// Package server implements pdbd's HTTP/JSON query service over the
// engine's serving stack: a live incr.Store absorbs updates while compiled
// plans answer probability requests.
//
// The request regime follows query answering under updates (Berkholz et
// al.'s FO+MOD maintenance, Kara et al.'s free access patterns): pay the
// preprocessing (Prepare) once per *query shape*, then answer every request
// as pure numeric work against maintained state. Concretely:
//
//   - POST /query normalizes the conjunctive query (core.NormalizeCQ) and
//     hits an LRU plan cache keyed by the normalized fingerprint, so
//     textually different but identical CQs share one registered live view;
//     cache misses register the view single-flight. A request carrying an
//     explicit probability assignment is instead answered by a frozen
//     component-sharded snapshot plan (core.PrepareSharded + Freeze), whose
//     evaluation fans over the worker pool.
//   - POST /batch folds many probability assignments into one multi-lane
//     ProbabilityBatch pass over the frozen snapshot plan; per-lane
//     failures surface individually (core.LaneErrors), healthy lanes keep
//     their values. With "parallel": true the lanes are served as
//     independent requests over the core.Serve worker pool instead.
//   - POST /update routes set/insert/delete batches through
//     Store.ApplyBatch: one commit, shared dirty spines, returning the
//     commit sequence and the store's work counters. With Config.IngestBatch
//     set, concurrent requests coalesce through the ingest batcher into
//     shared commits (group-commit style; per-request error semantics are
//     preserved), so write-heavy traffic pays one delta pass per window
//     instead of one commit per request.
//   - GET /watch streams every commit as a server-sent event in the
//     pdbio.WatchEvent delta format: sequence number plus the refreshed
//     probabilities of only the views the commit moved, in commit order —
//     the push channel of the incremental-maintenance layer. ?full=1 opts
//     into the legacy full-state frames.
//
// /healthz and /statsz expose liveness and the serving counters; Shutdown
// drains in-flight requests and closes watch streams.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/pdbio"
	"repro/internal/rel"
	"repro/internal/wal"
)

// Config tunes a Server. The zero value is serviceable: GOMAXPROCS workers,
// a 64-entry plan cache, default engine options.
type Config struct {
	// Workers sizes the core.Serve pool for parallel-mode evaluations.
	// <= 0 uses runtime.GOMAXPROCS.
	Workers int
	// CacheSize bounds the live-view plan cache (and the frozen snapshot
	// cache). <= 0 means 64.
	CacheSize int
	// MaxBatchLanes caps the number of assignments one /batch request may
	// carry; larger requests are rejected with 413 before any evaluation
	// (each lane widens every row block of the sweep, so the cap bounds the
	// request's memory footprint). <= 0 means 1024.
	MaxBatchLanes int
	// IngestBatch enables the /update ingest batcher and caps the number of
	// updates one merged commit may carry: concurrent update requests
	// coalesce into shared ApplyBatch commits (per-request 422 semantics
	// preserved), so N writers queue behind one delta pass instead of
	// serializing N commits. <= 0 disables batching: every request commits
	// alone, the pre-batcher behavior.
	IngestBatch int
	// IngestMaxWait is how long the batch leader holds an open window for
	// more requests to join. 0 coalesces only the requests that queued while
	// the previous commit was in flight — no added latency, group-commit
	// style; a positive wait trades latency for bigger batches.
	IngestMaxWait time.Duration
	// Options are passed to every Prepare/RegisterView.
	Options core.Options
	// Metrics is the registry the server's metric families are registered
	// on (pdbd shares one registry between the server and the WAL so
	// /metrics is a single exposition). nil creates a private registry.
	Metrics *obs.Registry
	// SlowQuery is the end-to-end latency threshold above which a request
	// is counted slow and logged with its per-stage span breakdown.
	// <= 0 disables the slow-request log (the trace is still recorded).
	SlowQuery time.Duration
	// Logger receives the server's structured log records (slow requests,
	// watch-drop warnings). nil uses slog.Default().
	Logger *slog.Logger
}

// Server is the query service: an incr.Store of the loaded instance, the
// plan caches, and the HTTP handlers. Create with New, serve with
// http.Server{Handler: s}, stop with Shutdown.
type Server struct {
	store *incr.Store
	cfg   Config
	mux   *http.ServeMux

	cache  *planCache
	frozen *frozenCache
	wal    *wal.WAL       // nil when the server runs without durability
	ingest *ingestBatcher // nil when update batching is disabled

	metrics *serverMetrics
	logger  *slog.Logger
	reqSeq  atomic.Uint64 // slow-log request ids

	viewMu sync.Mutex
	viewFP map[*incr.View]string // registered view -> fingerprint (for /watch)
	viewQ  map[*incr.View]string // registered view -> normalized query (for snapshots)

	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{}
	inflight  atomic.Int64

	nQueries    atomic.Uint64
	nBatchReqs  atomic.Uint64
	nBatchLanes atomic.Uint64
	nUpdateReqs atomic.Uint64
	nUpdates    atomic.Uint64
	nPrepares   atomic.Uint64 // view registrations + frozen snapshot prepares
	nWatchers   atomic.Int64
	nDropped    atomic.Uint64 // watch events dropped on slow consumers
}

// New builds a server over a snapshot of the TID instance t (the store is
// the mutable handle from here on, fed by /update).
func New(t *pdb.TID, cfg Config) (*Server, error) {
	st, err := incr.NewStore(t)
	if err != nil {
		return nil, err
	}
	return NewFromStore(st, cfg), nil
}

// NewFromStore builds a server over an existing live store — the warm
// restart path, where the store comes out of WAL recovery instead of a
// parsed instance.
func NewFromStore(st *incr.Store, cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.MaxBatchLanes <= 0 {
		cfg.MaxBatchLanes = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		store:   st,
		cfg:     cfg,
		mux:     http.NewServeMux(),
		frozen:  newFrozenCache(cfg.CacheSize),
		metrics: newServerMetrics(reg),
		logger:  logger,
		viewMu:  sync.Mutex{},
		viewFP:  map[*incr.View]string{},
		viewQ:   map[*incr.View]string{},
		drainCh: make(chan struct{}),
	}
	s.cache = newPlanCache(cfg.CacheSize, func(v *incr.View) {
		s.store.UnregisterView(v)
		s.viewMu.Lock()
		delete(s.viewFP, v)
		delete(s.viewQ, v)
		s.viewMu.Unlock()
	})
	s.cache.instrument(s.metrics.cacheHit, s.metrics.cacheMiss,
		s.metrics.cacheEvict, s.metrics.cacheCoalesce)
	s.frozen.instrument(s.metrics.frozenHit, s.metrics.frozenMiss)
	// The server owns the store's metric wiring: commit latency, spine work
	// and routing outcomes land on the same registry as the HTTP families.
	st.SetMetrics(incr.NewMetrics(reg))
	if cfg.IngestBatch > 0 {
		s.ingest = newIngestBatcher(st, cfg.IngestBatch, cfg.IngestMaxWait, s.drainCh, s.metrics)
	}
	s.registerStoreGauges()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("GET /watch", s.handleWatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /metrics", reg.Handler())
	return s
}

// AttachWAL makes the server durable: every commit the store acknowledges
// from here on is logged through w first, and snapshots record the
// currently registered view queries so a restart re-registers them warm.
// Attach before serving traffic; Shutdown closes the log (final flush +
// clean snapshot).
func (s *Server) AttachWAL(w *wal.WAL) {
	s.wal = w
	w.Attach(s.store, s.ViewQueries)
	s.registerWALGauges()
}

// ViewQueries returns the normalized query text of every currently cached
// live view, sorted — the snapshot metadata that makes restarts warm.
func (s *Server) ViewQueries() []string {
	s.viewMu.Lock()
	out := make([]string, 0, len(s.viewQ))
	for _, q := range s.viewQ {
		out = append(out, q)
	}
	s.viewMu.Unlock()
	sort.Strings(out)
	return out
}

// Store exposes the underlying live store (tests and embedders; handlers go
// through it too).
func (s *Server) Store() *incr.Store { return s.store }

// Preregister parses, normalizes and registers a query shape ahead of
// traffic, so the first client asking it is already a cache hit (pdbd -q).
func (s *Server) Preregister(raw string) error {
	nq, fp, err := parseQuery(raw)
	if err != nil {
		return err
	}
	_, _, err = s.view(nq, fp)
	return err
}

// ServeHTTP implements http.Handler with request admission: a draining
// server refuses new work with 503 (health and metrics stay reachable so
// load balancers and scrapers see the drain), and every admitted request is
// tracked so Shutdown can wait for it. The increment-then-recheck order
// pairs with Shutdown's store-then-poll: either this request observes the
// drain and backs out, or Shutdown observes the in-flight count — never
// neither.
//
// The three JSON endpoints are traced end to end: a span travels down
// through the handler (which marks its stages — parse, plan, eval, write),
// the response code and latency land in the per-endpoint metric families,
// and a request over the slow threshold is logged with its full stage
// breakdown. /watch is deliberately not wrapped: the recorder would mask
// the http.Flusher the SSE stream needs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	ep := instrumentedEndpoint(r)
	if ep == "" {
		s.mux.ServeHTTP(w, r)
		return
	}
	m := s.metrics
	m.requests[ep].Inc()
	ctx, span := obs.Trace(r.Context(), ep)
	sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	sum := span.End()
	m.latency[ep].Observe(sum.Total.Seconds())
	m.response(ep, sw.code).Inc()
	if thr := s.cfg.SlowQuery; thr > 0 && sum.Total >= thr {
		m.slowRequests.Inc()
		s.logSlow(ep, sw.code, sum)
	}
}

// instrumentedEndpoint maps a request to its metric endpoint label, or ""
// for routes served without tracing.
func instrumentedEndpoint(r *http.Request) string {
	if r.Method != http.MethodPost {
		return ""
	}
	switch r.URL.Path {
	case "/query":
		return epQuery
	case "/batch":
		return epBatch
	case "/update":
		return epUpdate
	}
	return ""
}

// statusRecorder captures the response code for the metric and slow-log
// pipeline. It intentionally does not forward Flush/Hijack — only the
// non-streaming JSON endpoints are wrapped in one.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// logSlow emits the structured slow-request record: one line carrying the
// request's identity, end-to-end latency, the stage breakdown (which tiles
// the total exactly), and every attribute the handler attached — the
// request-scoped facts (fingerprint, plan shape, cache verdict) that are
// too high-cardinality for metric labels.
func (s *Server) logSlow(ep string, code int, sum obs.Summary) {
	args := []any{
		slog.Uint64("request_id", s.reqSeq.Add(1)),
		slog.String("endpoint", ep),
		slog.Int("code", code),
		slog.Float64("total_us", float64(sum.Total.Nanoseconds())/1e3),
		slog.String("stages", sum.StageString()),
	}
	for _, a := range sum.Attrs {
		args = append(args, slog.Any(a.Key, a.Value))
	}
	s.logger.Warn("slow request", args...)
}

// Registry exposes the server's metric registry — pdbd mounts it at
// /metrics on the debug listener too, and embedders can add their own
// families alongside the server's.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// LatencySnapshot returns the end-to-end latency histogram of one
// instrumented endpoint ("query", "batch", "update"); ok is false for any
// other name.
func (s *Server) LatencySnapshot(endpoint string) (obs.HistogramSnapshot, bool) {
	h, ok := s.metrics.latency[endpoint]
	if !ok {
		return obs.HistogramSnapshot{}, false
	}
	return h.Snapshot(), true
}

// Shutdown drains the server: new requests are refused, open watch streams
// are closed, and in-flight requests are given until timeout to finish.
// With a WAL attached, the drained log is then flushed, fsynced and sealed
// under a final clean snapshot — a planned restart replays nothing.
// Returns false when the timeout expired with requests still running (the
// WAL is closed regardless: everything committed so far is made durable).
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	deadline := time.Now().Add(timeout)
	drained := true
	for s.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			drained = false
		}
	}
	return drained
}

// --- request/response shapes ---

type queryRequest struct {
	// Query is the conjunctive query, pdbcli syntax: "R(?x) & S(?x,?y)".
	Query string `json:"query"`
	// Assignment optionally overrides fact probabilities (store fact id ->
	// probability) for this evaluation only; it routes the request to the
	// frozen snapshot plan instead of the live view.
	Assignment map[string]float64 `json:"assignment,omitempty"`
}

type queryResponse struct {
	Probability float64 `json:"probability"`
	Seq         uint64  `json:"seq"`
	Normalized  string  `json:"normalized"`
	Cached      bool    `json:"cached"`
}

type batchRequest struct {
	Query string `json:"query"`
	// Assignments carries one probability override map per lane (store fact
	// id -> probability); omitted facts keep their live probability.
	Assignments []map[string]float64 `json:"assignments"`
	// Parallel serves the lanes as independent single evaluations over the
	// core.Serve worker pool instead of the multi-lane batched DP.
	Parallel bool `json:"parallel,omitempty"`
}

type batchResponse struct {
	Probabilities []float64 `json:"probabilities"`
	// Errors[i] is the failure of lane i, empty when the lane is healthy.
	Errors []string `json:"errors,omitempty"`
	Seq    uint64   `json:"seq"`
}

type updateOp struct {
	Op string `json:"op"` // set | insert | delete
	// ID is required for set/delete (a pointer so an omitted id is a
	// request error, not a silent update of fact 0).
	ID   *int     `json:"id,omitempty"`
	Rel  string   `json:"rel,omitempty"`
	Args []string `json:"args,omitempty"`
	P    float64  `json:"p,omitempty"`
}

type insertedFact struct {
	Fact string `json:"fact"`
	ID   int    `json:"id"`
}

type updateResponse struct {
	Seq uint64 `json:"seq"`
	// Applied counts the updates that actually committed: the full batch on
	// success, the staged prefix when the batch stopped at an invalid one.
	Applied  int            `json:"applied"`
	Inserted []insertedFact `json:"inserted,omitempty"`
	Stats    incr.Stats     `json:"stats"`
	Error    string         `json:"error,omitempty"`
}

// The /watch wire frame is pdbio.WatchEvent — the format is specified there
// so clients, the CLIs and the golden tests all read the same contract.

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// parseQuery parses and normalizes the request CQ, returning the normalized
// query and its cache fingerprint.
func parseQuery(raw string) (rel.CQ, string, error) {
	q, err := pdbio.ParseCQ(raw)
	if err != nil {
		return rel.CQ{}, "", err
	}
	nq := core.NormalizeCQ(q)
	return nq, core.FingerprintNormalized(nq), nil
}

// --- views (live path) ---

// view returns the cached live view for the fingerprint, registering it
// single-flight on a miss.
func (s *Server) view(nq rel.CQ, fp string) (*incr.View, bool, error) {
	return s.cache.get(fp, func() (*incr.View, error) {
		t0 := time.Now()
		v, err := s.store.RegisterView(nq, s.cfg.Options)
		if err != nil {
			return nil, err
		}
		s.metrics.prepareView.ObserveSince(t0)
		s.nPrepares.Add(1)
		s.viewMu.Lock()
		s.viewFP[v] = fp
		s.viewQ[v] = nq.String()
		s.viewMu.Unlock()
		return v, nil
	})
}

// --- frozen snapshot plans (assignment/batch path) ---

// frozenPlan returns the frozen sharded snapshot plan for the fingerprint
// at the store's current commit, preparing one when missing or stale; hit
// reports whether a still-fresh cached plan answered.
func (s *Server) frozenPlan(nq rel.CQ, fp string) (*frozenEntry, bool, error) {
	return s.frozen.get(fp, s.store.Seq(), func() (*frozenEntry, error) {
		t0 := time.Now()
		tid, ids, seq := s.store.Snapshot()
		sp, base, err := core.PrepareShardedTID(tid, nq, s.cfg.Options)
		if err != nil {
			return nil, err
		}
		if err := sp.Freeze(); err != nil {
			return nil, err
		}
		s.metrics.prepareFrozen.ObserveSince(t0)
		shardEval := s.metrics.shardEvalGauge
		sp.SetEvalObserver(func(_ int, d time.Duration) {
			shardEval.Observe(d.Seconds())
		})
		s.nPrepares.Add(1)
		eventOf := make(map[int]logic.Event, len(ids))
		for i, id := range ids {
			eventOf[id] = tid.EventOf(i)
		}
		return &frozenEntry{seq: seq, sp: sp, base: base, eventOf: eventOf}, nil
	})
}

// laneProb builds one lane's probability map: the snapshot base overridden
// by the request assignment (store fact id -> probability).
func (fe *frozenEntry) laneProb(assignment map[string]float64) (logic.Prob, error) {
	m := make(logic.Prob, len(fe.base))
	for e, p := range fe.base {
		m[e] = p
	}
	for key, p := range assignment {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("assignment key %q is not a fact id", key)
		}
		e, ok := fe.eventOf[id]
		if !ok {
			return nil, fmt.Errorf("no live fact with id %s", key)
		}
		m[e] = p
	}
	return m, nil
}

// --- handlers ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.nQueries.Add(1)
	span := obs.SpanFrom(r.Context())
	span.Stage("parse")
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	nq, fp, err := parseQuery(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	span.SetAttr("fp", fp)
	span.SetAttr("normalized", nq.String())
	if len(req.Assignment) > 0 {
		span.SetAttr("path", "frozen")
		span.Stage("plan")
		fe, hit, err := s.frozenPlan(nq, fp)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		span.SetAttr("cached", hit)
		span.SetAttr("shards", fe.sp.NumShards())
		span.Stage("lanes")
		p, err := fe.laneProb(req.Assignment)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		span.Stage("eval")
		t0 := time.Now()
		prob, err := fe.sp.Probability(p)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		s.metrics.evalSeconds.ObserveSince(t0)
		span.Stage("write")
		writeJSON(w, queryResponse{Probability: prob, Seq: fe.seq, Normalized: nq.String(), Cached: hit})
		return
	}
	span.SetAttr("path", "live")
	span.Stage("plan")
	v, hit, err := s.view(nq, fp)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	span.SetAttr("cached", hit)
	span.Stage("eval")
	prob, seq := v.ProbabilitySeq()
	span.Stage("write")
	writeJSON(w, queryResponse{Probability: prob, Seq: seq, Normalized: nq.String(), Cached: hit})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.nBatchReqs.Add(1)
	span := obs.SpanFrom(r.Context())
	span.Stage("parse")
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Assignments) == 0 {
		httpError(w, http.StatusBadRequest, "batch carries no assignments")
		return
	}
	if len(req.Assignments) > s.cfg.MaxBatchLanes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch carries %d assignments, limit is %d; split the sweep into smaller requests", len(req.Assignments), s.cfg.MaxBatchLanes))
		return
	}
	nq, fp, err := parseQuery(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	span.SetAttr("fp", fp)
	span.SetAttr("lanes", len(req.Assignments))
	span.SetAttr("parallel", req.Parallel)
	span.Stage("plan")
	fe, hit, err := s.frozenPlan(nq, fp)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	span.SetAttr("cached", hit)
	span.SetAttr("shards", fe.sp.NumShards())
	span.Stage("lanes")
	B := len(req.Assignments)
	s.nBatchLanes.Add(uint64(B))
	s.metrics.batchLanes.Observe(float64(B))
	laneErrs := make([]string, B)
	// Only lanes whose assignment parses are evaluated: a lane with a bad
	// fact id fails at admission, it does not burn a DP lane (or a whole
	// sharded evaluation in parallel mode).
	var ps []logic.Prob
	var valid []int
	for i, a := range req.Assignments {
		p, err := fe.laneProb(a)
		if err != nil {
			laneErrs[i] = err.Error()
			continue
		}
		ps = append(ps, p)
		valid = append(valid, i)
	}

	probs := make([]float64, B)
	evaled := make([]float64, len(valid))
	span.Stage("eval")
	tEval := time.Now()
	if req.Parallel {
		reqs := make([]core.Request, len(valid))
		for i := range ps {
			reqs[i] = core.Request{Sharded: fe.sp, P: ps[i]}
		}
		for i, resp := range core.Serve(reqs, s.cfg.Workers) {
			evaled[i] = resp.Probability
			if resp.Err != nil {
				laneErrs[valid[i]] = resp.Err.Error()
			}
		}
	} else if len(valid) > 0 {
		out, err := fe.sp.ProbabilityBatch(ps)
		if le, ok := err.(core.LaneErrors); ok {
			for i, lerr := range le {
				if lerr != nil {
					laneErrs[valid[i]] = lerr.Error()
				}
			}
		} else if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		copy(evaled, out)
	}
	s.metrics.evalSeconds.ObserveSince(tEval)
	span.Stage("write")
	for i, lane := range valid {
		probs[lane] = evaled[i]
	}
	anyErr := false
	for i := range laneErrs {
		if laneErrs[i] != "" {
			anyErr = true
			probs[i] = 0 // never ship NaN through JSON
		}
	}
	resp := batchResponse{Probabilities: probs, Seq: fe.seq}
	if anyErr {
		resp.Errors = laneErrs
	}
	writeJSON(w, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.nUpdateReqs.Add(1)
	span := obs.SpanFrom(r.Context())
	span.Stage("parse")
	var req struct {
		Updates []updateOp `json:"updates"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	us := make([]incr.Update, len(req.Updates))
	for i, op := range req.Updates {
		switch op.Op {
		case "set", "delete":
			if op.ID == nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("update %d: %s needs an \"id\"", i, op.Op))
				return
			}
			o := incr.OpSet
			if op.Op == "delete" {
				o = incr.OpDelete
			}
			us[i] = incr.Update{Op: o, ID: *op.ID, P: op.P}
		case "insert":
			if op.Rel == "" {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("update %d: insert needs a \"rel\"", i))
				return
			}
			us[i] = incr.Update{Op: incr.OpInsert, Fact: rel.NewFact(op.Rel, op.Args...), P: op.P}
		default:
			httpError(w, http.StatusBadRequest, fmt.Sprintf("update %d: unknown op %q (set|insert|delete)", i, op.Op))
			return
		}
	}
	span.SetAttr("updates", len(us))
	span.Stage("apply")
	var applied int
	var seq uint64
	var applyErr error
	if s.ingest != nil {
		res := s.ingest.submit(us)
		applied, seq, applyErr = res.applied, res.seq, res.err
	} else {
		applied, seq, applyErr = s.store.ApplyBatchN(us)
	}
	s.nUpdates.Add(uint64(applied))
	span.SetAttr("applied", applied)
	span.SetAttr("seq", seq)
	span.Stage("write")
	resp := updateResponse{Seq: seq, Applied: applied, Stats: s.store.Stats()}
	// Report inserted ids only for the prefix that actually committed — an
	// insert beyond the failing update never ran, even if its fact happens
	// to exist from an earlier batch.
	for _, u := range us[:applied] {
		if u.Op != incr.OpInsert {
			continue
		}
		if id := s.store.IDOf(u.Fact); id >= 0 {
			resp.Inserted = append(resp.Inserted, insertedFact{Fact: u.Fact.String(), ID: id})
		}
	}
	if applyErr != nil {
		// ApplyBatch commits the staged prefix before the failing update;
		// report the partial commit honestly with the error attached.
		resp.Error = applyErr.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// ?full=1 opts back into the pre-delta wire format: every frame carries
	// the complete state under the legacy "probabilities" key. The default
	// streams deltas — only the views a commit actually moved.
	fullMode := r.URL.Query().Get("full") == "1"
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// A buffered channel decouples the store's (serialized) notification
	// drain from this client's write speed; a consumer slower than the
	// buffer loses events and is told how many via the dropped counter.
	events := make(chan incr.Commit, 256)
	var dropped atomic.Uint64
	var warned atomic.Bool
	cancel := s.store.Subscribe(func(c incr.Commit) {
		select {
		case events <- c:
		default:
			dropped.Add(1)
			s.nDropped.Add(1)
			s.metrics.watchDropped.Inc()
			// One warning per subscriber, at the first drop: losing events
			// is a consumer-speed problem worth surfacing, but a slow
			// consumer must not flood the log with one line per commit.
			if warned.CompareAndSwap(false, true) {
				s.logger.Warn("watch subscriber dropping events",
					slog.String("remote", r.RemoteAddr),
					slog.Int("buffer", cap(events)),
					slog.Uint64("seq", c.Seq))
			}
		}
	})
	defer cancel()
	s.nWatchers.Add(1)
	defer s.nWatchers.Add(-1)

	send := func(ev pdbio.WatchEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// Initial snapshot so clients see the current state before the first
	// commit arrives.
	if !send(pdbio.WatchEvent{Seq: s.store.Seq(), Full: s.viewProbabilities()}) {
		return
	}
	for {
		select {
		case c := <-events:
			ev := pdbio.WatchEvent{Seq: c.Seq, Dropped: dropped.Swap(0)}
			if fullMode || ev.Dropped > 0 {
				// Full-format stream, or a resync after dropped commits: the
				// client missed deltas it can never replay, so ship the whole
				// state.
				ev.Full = map[string]float64{}
			} else {
				ev.Changed = map[string]float64{}
			}
			s.viewMu.Lock()
			for i, v := range c.Views {
				fp, ok := s.viewFP[v]
				if !ok {
					continue // evicted from the plan cache since this commit
				}
				if ev.Full != nil {
					ev.Full[fp] = c.Probabilities[i]
				} else if c.Changed[i] {
					ev.Changed[fp] = c.Probabilities[i]
				}
			}
			s.viewMu.Unlock()
			if !send(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// viewProbabilities snapshots the current probability of every cached view,
// keyed by fingerprint.
func (s *Server) viewProbabilities() map[string]float64 {
	s.viewMu.Lock()
	views := make(map[*incr.View]string, len(s.viewFP))
	for v, fp := range s.viewFP {
		views[v] = fp
	}
	s.viewMu.Unlock()
	out := make(map[string]float64, len(views))
	for v, fp := range views {
		out[fp] = v.Probability()
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	doc := map[string]any{
		"status": status,
		"seq":    s.store.Seq(),
		"facts":  s.store.NumLive(),
		"views":  s.store.NumViews(),
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		if ws.Err != "" && code == http.StatusOK {
			// A poisoned log means acknowledged commits may stop being
			// durable — fail health so the orchestrator replaces the task.
			status, code = "wal-failed", http.StatusServiceUnavailable
			doc["status"] = status
		}
		doc["durable"] = true
		doc["synced_seq"] = ws.SyncedSeq
		doc["wal_queue"] = ws.QueueDepth
		doc["snapshot_seq"] = ws.SnapshotSeq
		if ws.Err != "" {
			doc["wal_error"] = ws.Err
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

// EndpointLatency is the quantile summary of one endpoint's end-to-end
// latency histogram, in microseconds (extracted from the same log-bucketed
// histogram /metrics exposes, so the two surfaces always agree).
type EndpointLatency struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// Statsz is the counters document served by /statsz.
type Statsz struct {
	Queries       uint64 `json:"queries"`
	BatchRequests uint64 `json:"batch_requests"`
	BatchLanes    uint64 `json:"batch_lanes"`
	UpdateReqs    uint64 `json:"update_requests"`
	Updates       uint64 `json:"updates"`
	Prepares      uint64 `json:"prepares"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheEvicts   uint64 `json:"cache_evictions"`
	CacheSize     int    `json:"cache_size"`
	FrozenHits    uint64 `json:"frozen_hits"`
	FrozenMisses  uint64 `json:"frozen_misses"`
	FrozenSize    int    `json:"frozen_size"`
	CacheCoalesce uint64 `json:"cache_coalesces"`
	Watchers      int64  `json:"watchers"`
	WatchDropped  uint64 `json:"watch_events_dropped"`
	SlowRequests  uint64 `json:"slow_requests"`
	// IngestFlushes counts the merged commits the /update batcher drove and
	// IngestCoalesced the requests that shared their commit with another;
	// both zero when batching is disabled.
	IngestFlushes   uint64 `json:"ingest_flushes"`
	IngestCoalesced uint64 `json:"ingest_coalesced"`
	// Latency carries the per-endpoint quantile summaries (query, batch,
	// update), filled from the serving histograms.
	Latency map[string]EndpointLatency `json:"latency"`
	Seq     uint64                     `json:"seq"`
	Facts   int                        `json:"facts"`
	Views   int                        `json:"views"`
	Store   incr.Stats                 `json:"store"`
	// Durability is the WAL's counters (last synced/written seq, queue
	// depth, log size, snapshot age); nil when the server runs without one.
	Durability *wal.Stats `json:"durability,omitempty"`
}

// Stats snapshots the serving counters (also served as /statsz).
func (s *Server) Stats() Statsz {
	hits, misses, evicts, size := s.cache.stats()
	fh, fm, fs := s.frozen.stats()
	var dur *wal.Stats
	if s.wal != nil {
		ws := s.wal.Stats()
		dur = &ws
	}
	lat := make(map[string]EndpointLatency, len(endpoints))
	for _, ep := range endpoints {
		sn := s.metrics.latency[ep].Snapshot()
		lat[ep] = EndpointLatency{
			Count: sn.Count,
			P50us: sn.Quantile(0.50) * 1e6,
			P95us: sn.Quantile(0.95) * 1e6,
			P99us: sn.Quantile(0.99) * 1e6,
		}
	}
	var ingFlushes, ingCoalesced uint64
	if s.ingest != nil {
		ingFlushes, ingCoalesced = s.ingest.statsSnapshot()
	}
	return Statsz{
		Queries:         s.nQueries.Load(),
		BatchRequests:   s.nBatchReqs.Load(),
		BatchLanes:      s.nBatchLanes.Load(),
		UpdateReqs:      s.nUpdateReqs.Load(),
		Updates:         s.nUpdates.Load(),
		Prepares:        s.nPrepares.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvicts:     evicts,
		CacheSize:       size,
		FrozenHits:      fh,
		FrozenMisses:    fm,
		FrozenSize:      fs,
		CacheCoalesce:   s.metrics.cacheCoalesce.Value(),
		Watchers:        s.nWatchers.Load(),
		WatchDropped:    s.nDropped.Load(),
		SlowRequests:    s.metrics.slowRequests.Value(),
		IngestFlushes:   ingFlushes,
		IngestCoalesced: ingCoalesced,
		Latency:         lat,
		Seq:             s.store.Seq(),
		Facts:           s.store.NumLive(),
		Views:           s.store.NumViews(),
		Store:           s.store.Stats(),
		Durability:      dur,
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
