package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pdb"
	"repro/internal/pdbio"
	"repro/internal/rel"
)

// rstTID builds the 3-fact R(a) S(a,b) T(b) instance with the given
// probabilities.
func rstTID(pr, ps, pt float64) *pdb.TID {
	t := pdb.NewTID()
	t.AddFact(pr, "R", "a")
	t.AddFact(ps, "S", "a", "b")
	t.AddFact(pt, "T", "b")
	return t
}

func newTestServer(t *testing.T, tid *pdb.TID, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(tid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, into any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var qr queryResponse
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x) & S(?x,?y) & T(?y)"}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if math.Abs(qr.Probability-0.9*0.5*0.8) > 1e-12 {
		t.Fatalf("P(q) = %v, want %v", qr.Probability, 0.36)
	}
	if qr.Cached {
		t.Error("first request reported as cached")
	}
	// The same shape under different variable names and atom order is a
	// cache hit answered by the same view.
	var qr2 queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "T(?b) & S(?a,?b) & R(?a)"}, &qr2)
	if !qr2.Cached {
		t.Error("isomorphic query missed the plan cache")
	}
	if qr2.Probability != qr.Probability {
		t.Errorf("cache hit answered %v, first answer %v", qr2.Probability, qr.Probability)
	}
	// Malformed queries are a 400, not a prepare.
	if resp := postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status %d", resp.StatusCode)
	}
}

func TestQueryAssignmentOverride(t *testing.T) {
	_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var qr queryResponse
	resp := postJSON(t, ts.URL+"/query", queryRequest{
		Query:      "R(?x) & S(?x,?y) & T(?y)",
		Assignment: map[string]float64{"1": 1.0}, // S certain for this request only
	}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if math.Abs(qr.Probability-0.9*1.0*0.8) > 1e-12 {
		t.Fatalf("override P(q) = %v, want %v", qr.Probability, 0.72)
	}
	if qr.Cached {
		t.Error("first assignment request reported as cached (the frozen plan was just prepared)")
	}
	var qrHit queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{
		Query:      "R(?x) & S(?x,?y) & T(?y)",
		Assignment: map[string]float64{"1": 0.25},
	}, &qrHit)
	if !qrHit.Cached {
		t.Error("second assignment request missed the frozen cache")
	}
	if math.Abs(qrHit.Probability-0.9*0.25*0.8) > 1e-12 {
		t.Fatalf("cached frozen plan answered %v", qrHit.Probability)
	}
	// The live store is untouched by per-request overrides.
	var qr2 queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x) & S(?x,?y) & T(?y)"}, &qr2)
	if math.Abs(qr2.Probability-0.36) > 1e-12 {
		t.Fatalf("live P(q) drifted to %v", qr2.Probability)
	}
	// Unknown fact ids are a client error.
	if resp := postJSON(t, ts.URL+"/query", queryRequest{
		Query:      "R(?x) & S(?x,?y) & T(?y)",
		Assignment: map[string]float64{"99": 0.5},
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown id status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{Workers: 4})
		var br batchResponse
		resp := postJSON(t, ts.URL+"/batch", batchRequest{
			Query: "R(?x) & S(?x,?y) & T(?y)",
			Assignments: []map[string]float64{
				{},
				{"1": 0.1},
				{"0": 1, "1": 1, "2": 1},
			},
			Parallel: parallel,
		}, &br)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallel=%v: status %d", parallel, resp.StatusCode)
		}
		want := []float64{0.36, 0.9 * 0.1 * 0.8, 1}
		for i, w := range want {
			if math.Abs(br.Probabilities[i]-w) > 1e-12 {
				t.Errorf("parallel=%v lane %d = %v, want %v", parallel, i, br.Probabilities[i], w)
			}
		}
		if br.Errors != nil {
			t.Errorf("parallel=%v: unexpected lane errors %v", parallel, br.Errors)
		}
	}
}

func TestBatchLaneErrors(t *testing.T) {
	_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var br batchResponse
	resp := postJSON(t, ts.URL+"/batch", batchRequest{
		Query: "R(?x) & S(?x,?y) & T(?y)",
		Assignments: []map[string]float64{
			{"1": 0.2},
			{"1": 1.5},    // invalid probability: fails its lane only
			{"nope": 0.5}, // unparsable id: fails its lane only
			{"99": 0.5},   // unknown id: fails its lane only
			{"0": 0.5},    // healthy
		},
	}, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if br.Errors == nil {
		t.Fatal("lane errors missing")
	}
	for _, bad := range []int{1, 2, 3} {
		if br.Errors[bad] == "" {
			t.Errorf("lane %d error missing", bad)
		}
		if br.Probabilities[bad] != 0 || math.IsNaN(br.Probabilities[bad]) {
			t.Errorf("failed lane %d value %v, want NaN-free 0", bad, br.Probabilities[bad])
		}
	}
	for _, good := range []int{0, 4} {
		if br.Errors[good] != "" {
			t.Errorf("healthy lane %d failed: %s", good, br.Errors[good])
		}
	}
	if math.Abs(br.Probabilities[0]-0.9*0.2*0.8) > 1e-12 {
		t.Errorf("lane 0 = %v", br.Probabilities[0])
	}
	if math.Abs(br.Probabilities[4]-0.5*0.5*0.8) > 1e-12 {
		t.Errorf("lane 4 = %v", br.Probabilities[4])
	}
}

func TestBatchLaneCap(t *testing.T) {
	_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{MaxBatchLanes: 4})
	over := make([]map[string]float64, 5)
	for i := range over {
		over[i] = map[string]float64{"0": 0.5}
	}
	if resp := postJSON(t, ts.URL+"/batch", batchRequest{
		Query:       "R(?x) & S(?x,?y) & T(?y)",
		Assignments: over,
	}, nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	// Exactly at the cap is served.
	var br batchResponse
	if resp := postJSON(t, ts.URL+"/batch", batchRequest{
		Query:       "R(?x) & S(?x,?y) & T(?y)",
		Assignments: over[:4],
	}, &br); resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap batch status %d", resp.StatusCode)
	}
	for i, p := range br.Probabilities {
		if math.Abs(p-0.5*0.5*0.8) > 1e-12 {
			t.Errorf("lane %d = %v", i, p)
		}
	}
}

func TestUpdateEndpoint(t *testing.T) {
	s, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var ur updateResponse
	resp := postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []updateOp{
			{Op: "set", ID: ip(1), P: 0.9},
			{Op: "insert", Rel: "T", Args: []string{"c"}, P: 0.4},
			{Op: "insert", Rel: "S", Args: []string{"a", "c"}, P: 0.7},
		},
	}, &ur)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ur.Seq != 1 || ur.Applied != 3 {
		t.Fatalf("seq %d applied %d", ur.Seq, ur.Applied)
	}
	if len(ur.Inserted) != 2 || ur.Inserted[0].Fact != "T(c)" || ur.Inserted[1].Fact != "S(a,c)" {
		t.Fatalf("inserted %v", ur.Inserted)
	}
	if ur.Stats.Commits != 1 || ur.Stats.Updates != 3 || ur.Stats.Shards == 0 {
		t.Fatalf("stats %+v", ur.Stats)
	}
	// The live view reflects the commit.
	var qr queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x) & S(?x,?y) & T(?y)"}, &qr)
	want, err := s.Store().Oracle(rel.HardQuery())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qr.Probability-want) > 1e-12 {
		t.Fatalf("post-update P(q) = %v, oracle %v", qr.Probability, want)
	}

	// A batch failing mid-way commits its prefix and reports the error.
	var ur2 updateResponse
	resp = postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []updateOp{
			{Op: "set", ID: ip(0), P: 0.5},
			{Op: "set", ID: ip(999), P: 0.5},
		},
	}, &ur2)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("partial-batch status %d", resp.StatusCode)
	}
	if ur2.Error == "" || ur2.Seq != 2 {
		t.Fatalf("partial batch: %+v", ur2)
	}
	if ur2.Applied != 1 {
		t.Fatalf("partial batch applied = %d, want 1 (only the staged prefix landed)", ur2.Applied)
	}
	// An insert AFTER the failing update never ran: it must not be reported
	// as inserted even though its fact already exists from an earlier batch.
	var ur3 updateResponse
	resp = postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []updateOp{
			{Op: "set", ID: ip(999), P: 0.5},
			{Op: "insert", Rel: "T", Args: []string{"c"}, P: 0.4},
		},
	}, &ur3)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ur3.Applied != 0 || len(ur3.Inserted) != 0 {
		t.Fatalf("nothing applied, yet applied=%d inserted=%v", ur3.Applied, ur3.Inserted)
	}
	if p, _ := s.Store().Prob(0); p != 0.5 {
		t.Fatalf("prefix not committed: P(fact 0) = %v", p)
	}
	// Unknown ops and empty batches are 400s.
	if resp := postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{{Op: "zap", ID: ip(1)}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op status %d", resp.StatusCode)
	}
	// Malformed ops are rejected before anything stages: an insert with no
	// relation (field typo) and a set with no id (would silently hit fact 0).
	if resp := postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{{Op: "insert", P: 0.5}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("relation-less insert status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{{Op: "set", P: 0.5}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("id-less set status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d", resp.StatusCode)
	}
}

// sseReader reads watch events off an open /watch stream.
type sseReader struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openWatch(t *testing.T, url string) *sseReader {
	t.Helper()
	return openWatchQuery(t, url, "")
}

// openWatchQuery opens /watch with an explicit query string ("?full=1" opts
// out of delta frames).
func openWatchQuery(t *testing.T, url, query string) *sseReader {
	t.Helper()
	resp, err := http.Get(url + "/watch" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &sseReader{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

func (r *sseReader) next(t *testing.T) pdbio.WatchEvent {
	t.Helper()
	for r.sc.Scan() {
		line := strings.TrimSpace(r.sc.Text())
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev pdbio.WatchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		return ev
	}
	t.Fatalf("watch stream ended: %v", r.sc.Err())
	return pdbio.WatchEvent{}
}

// TestEndToEndServing is the acceptance scenario: two concurrent clients ask
// the same normalized CQ under different spellings (one Prepare total, the
// cache hit visible in /statsz), then a third client commits updates while a
// /watch stream receives commit-ordered refreshed probabilities that match a
// from-scratch incr.Oracle recomputation to 1e-12.
func TestEndToEndServing(t *testing.T) {
	s, ts := newTestServer(t, gen.RSTChain(6, 0.5), Config{Workers: 4})
	q := rel.HardQuery()
	fp := core.FingerprintCQ(q)

	// Phase 1: two concurrent clients, textually different identical CQs.
	spellings := []string{
		"R(?x) & S(?x,?y) & T(?y)",
		"T(?b) & S(?a,?b) & R(?a)",
	}
	var wg sync.WaitGroup
	answers := make([]float64, len(spellings))
	for i, spelled := range spellings {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qr queryResponse
			postJSON(t, ts.URL+"/query", queryRequest{Query: spelled}, &qr)
			answers[i] = qr.Probability
		}()
	}
	wg.Wait()
	if answers[0] != answers[1] {
		t.Fatalf("concurrent clients disagree: %v vs %v", answers[0], answers[1])
	}
	var stats Statsz
	getJSON(t, ts.URL+"/statsz", &stats)
	if stats.Prepares != 1 {
		t.Fatalf("prepares = %d, want exactly 1 (single-flight normalized cache)", stats.Prepares)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("cache hits = %d, want >= 1", stats.CacheHits)
	}
	if stats.Queries != 2 {
		t.Fatalf("queries = %d", stats.Queries)
	}

	// Phase 2: a watch stream against a stream of update commits. The test
	// is the only writer, so after each commit's event arrives the store is
	// quiescent and the Oracle can recompute ground truth.
	watch := openWatch(t, ts.URL)
	hello := watch.next(t)
	if hello.Seq != s.Store().Seq() {
		t.Fatalf("hello event seq %d, store %d", hello.Seq, s.Store().Seq())
	}

	lastSeq := hello.Seq
	updates := [][]updateOp{
		{{Op: "set", ID: ip(0), P: 0.95}},
		{{Op: "set", ID: ip(4), P: 0.05}, {Op: "insert", Rel: "S", Args: []string{"v0", "v9"}, P: 0.6}},
		{{Op: "insert", Rel: "R", Args: []string{"z0"}, P: 0.5}, {Op: "insert", Rel: "S", Args: []string{"z0", "z1"}, P: 0.5}, {Op: "insert", Rel: "T", Args: []string{"z1"}, P: 0.5}},
		{{Op: "delete", ID: ip(2)}},
		{{Op: "set", ID: ip(1), P: 0.33}},
	}
	for _, batch := range updates {
		var ur updateResponse
		resp := postJSON(t, ts.URL+"/update", map[string]any{"updates": batch}, &ur)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update status %d (%+v)", resp.StatusCode, ur)
		}
		ev := watch.next(t)
		if ev.Seq != lastSeq+1 {
			t.Fatalf("watch seq %d, want %d (commit order)", ev.Seq, lastSeq+1)
		}
		lastSeq = ev.Seq
		// Every commit in this sequence genuinely moves the watched view, so
		// the delta frame must carry its fingerprint.
		got, ok := ev.Changed[fp]
		if !ok {
			t.Fatalf("event %d misses the view fingerprint %q: %v", ev.Seq, fp, ev.Changed)
		}
		want, err := s.Store().Oracle(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("commit %d: watched %v, oracle %v (|Δ|=%.3g)", ev.Seq, got, want, math.Abs(got-want))
		}
	}
}

// TestWatchCancelOnDisconnect: closing the client connection cancels the
// subscription; later commits must not leak to it (watchers gauge drops).
func TestWatchCancelOnDisconnect(t *testing.T) {
	s, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	watch := openWatch(t, ts.URL)
	_ = watch.next(t) // hello
	watch.resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Watchers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher gauge never dropped after disconnect")
		}
		// Commits push events into the (now dead) stream, driving the
		// handler to notice the closed connection.
		postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{{Op: "set", ID: ip(0), P: 0.5}}}, nil)
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheEviction: a cache smaller than the query-shape working set evicts
// cold views and unregisters them from the store.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{CacheSize: 2})
	shapes := []string{
		"R(?x)",
		"S(?x,?y)",
		"T(?y)",
		"R(?x) & S(?x,?y)",
	}
	for _, q := range shapes {
		if resp := postJSON(t, ts.URL+"/query", queryRequest{Query: q}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q status %d", q, resp.StatusCode)
		}
	}
	st := s.Stats()
	if st.CacheSize > 2 || st.Views > 2 {
		t.Fatalf("cache %d entries, %d store views; want <= 2", st.CacheSize, st.Views)
	}
	if st.CacheEvicts < 2 {
		t.Fatalf("evictions = %d, want >= 2", st.CacheEvicts)
	}
	// Evicted shapes still answer (re-registered on demand).
	var qr queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x)"}, &qr)
	if math.Abs(qr.Probability-0.9) > 1e-12 {
		t.Fatalf("re-registered view answered %v", qr.Probability)
	}
}

// TestDrain: a draining server 503s new work, reports draining health, and
// Shutdown completes with open watch streams.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	watch := openWatch(t, ts.URL)
	_ = watch.next(t)
	if !s.Shutdown(5 * time.Second) {
		t.Fatal("shutdown timed out")
	}
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x)"}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining query status %d", resp.StatusCode)
	}
}

// TestServerConcurrentMixed hammers queries, batches, updates and watch
// streams concurrently; run under -race in CI. Every query answer must match
// either the store state before or after the concurrent updates — here we
// only require the server never errors and stays internally consistent,
// checked by a final oracle comparison once writers are done.
func TestServerConcurrentMixed(t *testing.T) {
	s, ts := newTestServer(t, gen.RSTChain(5, 0.5), Config{Workers: 4, CacheSize: 4})
	queries := []string{
		"R(?x) & S(?x,?y) & T(?y)",
		"S(?a,?b) & T(?b)",
		"R(?q)",
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				var qr queryResponse
				resp := postJSON(t, ts.URL+"/query", queryRequest{Query: queries[(w+i)%len(queries)]}, &qr)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			var ur updateResponse
			resp := postJSON(t, ts.URL+"/update", map[string]any{
				"updates": []updateOp{{Op: "set", ID: ip(i % 9), P: float64(i%10+1) / 11}},
			}, &ur)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("update status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		watch := openWatch(t, ts.URL)
		last := uint64(0)
		for i := 0; i < 5; i++ {
			ev := watch.next(t)
			if ev.Seq < last {
				t.Errorf("watch went backwards: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		}
	}()
	wg.Wait()
	for _, raw := range queries {
		q, err := pdbio.ParseCQ(raw)
		if err != nil {
			t.Fatal(err)
		}
		var qr queryResponse
		postJSON(t, ts.URL+"/query", queryRequest{Query: raw}, &qr)
		want, err := s.Store().Oracle(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qr.Probability-want) > 1e-12 {
			t.Fatalf("quiescent %q = %v, oracle %v", raw, qr.Probability, want)
		}
	}
}

// TestFrozenSnapshotRefresh: frozen batch plans are invalidated by commits —
// a /batch after an update answers from the new facts.
func TestFrozenSnapshotRefresh(t *testing.T) {
	s, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var br batchResponse
	postJSON(t, ts.URL+"/batch", batchRequest{
		Query:       "R(?x) & S(?x,?y) & T(?y)",
		Assignments: []map[string]float64{{}},
	}, &br)
	if math.Abs(br.Probabilities[0]-0.36) > 1e-12 {
		t.Fatalf("pre-update batch = %v", br.Probabilities[0])
	}
	postJSON(t, ts.URL+"/update", map[string]any{"updates": []updateOp{{Op: "set", ID: ip(0), P: 1}}}, nil)
	var br2 batchResponse
	postJSON(t, ts.URL+"/batch", batchRequest{
		Query:       "R(?x) & S(?x,?y) & T(?y)",
		Assignments: []map[string]float64{{}},
	}, &br2)
	if math.Abs(br2.Probabilities[0]-0.4) > 1e-12 {
		t.Fatalf("post-update batch = %v, want 0.4", br2.Probabilities[0])
	}
	if br2.Seq != s.Store().Seq() {
		t.Fatalf("batch snapshot seq %d, store %d", br2.Seq, s.Store().Seq())
	}
	st := s.Stats()
	if st.FrozenMisses != 2 {
		t.Errorf("frozen misses = %d, want 2 (initial + refresh)", st.FrozenMisses)
	}
}

func ExampleServer() {
	tid := pdb.NewTID()
	tid.AddFact(0.9, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.8, "T", "b")
	s, err := New(tid, Config{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Query: "R(?x) & S(?x,?y) & T(?y)"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	json.NewDecoder(resp.Body).Decode(&qr)
	fmt.Printf("P(q) = %.3f\n", qr.Probability)
	// Output: P(q) = 0.360
}

// ip builds the pointer-typed fact id updateOp wants (an omitted id must be
// a request error, so the field is *int).
func ip(i int) *int { return &i }

// TestIngestBatcherConcurrentWriters: concurrent /update writers behind the
// ingest batcher coalesce into far fewer store commits than requests, while
// every request still gets its own correct ack — each writer's final weight
// lands, sequence numbers never go backwards per writer, and the coalescing
// counters surface in /statsz. A malformed request routed through the same
// batcher keeps its per-caller 422 semantics.
func TestIngestBatcherConcurrentWriters(t *testing.T) {
	s, ts := newTestServer(t, gen.RSTChain(12, 0.5), Config{
		Workers:       4,
		CacheSize:     4,
		IngestBatch:   64,
		IngestMaxWait: 2 * time.Millisecond,
	})
	const writers = 8
	const perWriter = 20
	finals := make([]float64, writers) // each slot written by one goroutine only
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastSeq := uint64(0)
			for i := 0; i < perWriter; i++ {
				p := float64((w+i)%10+1) / 11
				finals[w] = p
				var ur updateResponse
				resp := postJSON(t, ts.URL+"/update", map[string]any{
					"updates": []updateOp{{Op: "set", ID: ip(w), P: p}},
				}, &ur)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
				if ur.Applied != 1 {
					t.Errorf("writer %d: applied %d, want 1", w, ur.Applied)
					return
				}
				if ur.Seq < lastSeq {
					t.Errorf("writer %d: ack seq went backwards: %d after %d", w, ur.Seq, lastSeq)
					return
				}
				lastSeq = ur.Seq
			}
		}(w)
	}
	wg.Wait()

	// Each writer touched its own fact, so its last acked write must be the
	// store's weight — coalescing must not reorder a single caller's updates.
	for w := 0; w < writers; w++ {
		got, err := s.Store().Prob(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != finals[w] {
			t.Errorf("fact %d = %v, want writer %d's final write %v", w, got, w, finals[w])
		}
	}
	total := uint64(writers * perWriter)
	if commits := s.Store().Stats().Commits; commits*2 > total {
		t.Errorf("coalescing too weak: %d commits for %d requests", commits, total)
	}
	var stats Statsz
	getJSON(t, ts.URL+"/statsz", &stats)
	if stats.IngestFlushes == 0 || stats.IngestFlushes != s.Store().Stats().Commits {
		t.Errorf("statsz ingest_flushes = %d, store commits = %d", stats.IngestFlushes, s.Store().Stats().Commits)
	}
	if stats.IngestCoalesced == 0 {
		t.Error("statsz ingest_coalesced = 0 under concurrent writers")
	}

	// Per-caller failure semantics survive the batcher: the staged prefix of
	// THIS request landed, the bad op is the caller's own 422.
	var ur updateResponse
	resp := postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []updateOp{
			{Op: "set", ID: ip(0), P: 0.5},
			{Op: "set", ID: ip(9999), P: 0.5},
		},
	}, &ur)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad batch through the batcher: status %d", resp.StatusCode)
	}
	if ur.Applied != 1 || ur.Error == "" {
		t.Fatalf("bad batch through the batcher: %+v", ur)
	}
	if p, err := s.Store().Prob(0); err != nil || p != 0.5 {
		t.Fatalf("staged prefix did not land: fact 0 = %v, %v", p, err)
	}
}

// TestWatchFullOptIn: ?full=1 keeps the pre-delta wire format — every frame
// carries the complete state under "probabilities", never a "changed" map —
// while the default stream sends deltas for the same commits.
func TestWatchFullOptIn(t *testing.T) {
	_, ts := newTestServer(t, rstTID(0.9, 0.5, 0.8), Config{})
	var qr queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "R(?x) & S(?x,?y) & T(?y)"}, &qr)

	full := openWatchQuery(t, ts.URL, "?full=1")
	delta := openWatch(t, ts.URL)
	if ev := full.next(t); len(ev.Full) != 1 || ev.Changed != nil {
		t.Fatalf("full-mode initial frame: %+v", ev)
	}
	if ev := delta.next(t); len(ev.Full) != 1 || ev.Changed != nil {
		t.Fatalf("delta-mode initial frame must still be a full snapshot: %+v", ev)
	}

	var ur updateResponse
	postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []updateOp{{Op: "set", ID: ip(1), P: 0.9}},
	}, &ur)

	fe := full.next(t)
	if len(fe.Full) != 1 || fe.Changed != nil {
		t.Fatalf("full-mode commit frame: %+v", fe)
	}
	de := delta.next(t)
	if len(de.Changed) != 1 || de.Full != nil {
		t.Fatalf("delta-mode commit frame: %+v", de)
	}
	for fp, p := range de.Changed {
		if fe.Full[fp] != p {
			t.Fatalf("delta %v disagrees with full frame %v", de.Changed, fe.Full)
		}
	}
}
