package treedec

import (
	"container/heap"
	"fmt"
	"sort"
)

// Decomposition is a tree decomposition of a graph: a tree whose nodes carry
// bags of vertices such that (1) every vertex is in some bag, (2) every edge
// has both endpoints in some bag, and (3) the bags containing any given
// vertex form a connected subtree.
//
// The tree is stored as a rooted forest via Parent (Parent[i] == -1 for
// roots); Validate checks the three conditions against a graph.
type Decomposition struct {
	Bags   [][]int // Bags[i] is the sorted bag of tree node i
	Parent []int   // Parent[i] is the parent node, -1 for a root

	// occ caches the vertex→bags index built by index(); occN is the bag
	// count at build time, used to invalidate the cache when bags are added.
	occ  [][]int
	occN int
}

// NumNodes returns the number of tree nodes.
func (d *Decomposition) NumNodes() int { return len(d.Bags) }

// Width returns the width of the decomposition: max bag size minus one.
// The empty decomposition has width -1.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Children returns, for each node, its sorted child list.
func (d *Decomposition) Children() [][]int {
	ch := make([][]int, len(d.Parent))
	for i, p := range d.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// Roots returns the root nodes of the forest.
func (d *Decomposition) Roots() []int {
	var rs []int
	for i, p := range d.Parent {
		if p < 0 {
			rs = append(rs, i)
		}
	}
	return rs
}

// Validate checks that d is a valid tree decomposition of g, returning a
// descriptive error when a condition fails.
func (d *Decomposition) Validate(g *Graph) error {
	n := g.N()
	// Structure: Parent must define a forest.
	for i, p := range d.Parent {
		if p >= len(d.Bags) || p == i {
			return fmt.Errorf("treedec: node %d has invalid parent %d", i, p)
		}
	}
	if err := d.checkAcyclic(); err != nil {
		return err
	}
	// (1) vertex coverage.
	covered := make([]bool, n)
	for _, b := range d.Bags {
		for _, v := range b {
			if v < 0 || v >= n {
				return fmt.Errorf("treedec: bag vertex %d out of range", v)
			}
			covered[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !covered[v] {
			return fmt.Errorf("treedec: vertex %d not covered by any bag", v)
		}
	}
	// (2) edge coverage, through the shared vertex→bags index.
	occ := vertexOccurrences(d.Bags, nil)
	for _, e := range g.Edges() {
		if findInOccurrences(d.Bags, occ, e[0], e[1]) < 0 {
			return fmt.Errorf("treedec: edge {%d,%d} not covered by any bag", e[0], e[1])
		}
	}
	// (3) connectedness of occurrences, per vertex.
	if err := d.checkConnectivity(n); err != nil {
		return err
	}
	return nil
}

func (d *Decomposition) checkAcyclic() error {
	state := make([]int, len(d.Parent)) // 0 unvisited, 1 visiting, 2 done
	for i := range d.Parent {
		j := i
		var path []int
		for j >= 0 && state[j] == 0 {
			state[j] = 1
			path = append(path, j)
			j = d.Parent[j]
		}
		if j >= 0 && state[j] == 1 {
			return fmt.Errorf("treedec: parent pointers contain a cycle through node %d", j)
		}
		for _, k := range path {
			state[k] = 2
		}
	}
	return nil
}

func (d *Decomposition) checkConnectivity(n int) error {
	// For each vertex, the set of nodes whose bag contains it must induce a
	// connected subtree. Count, for each vertex, occurrences and the number
	// of tree edges between two occurrences; connected iff edges = occ - 1
	// per vertex (within one tree of the forest, occurrences must not span
	// multiple forest trees unless... they must not at all).
	occ := make([]int, n)
	links := make([]int, n)
	inBag := make([]map[int]bool, len(d.Bags))
	for i, b := range d.Bags {
		m := make(map[int]bool, len(b))
		for _, v := range b {
			m[v] = true
			occ[v]++
		}
		inBag[i] = m
	}
	for i, p := range d.Parent {
		if p < 0 {
			continue
		}
		for v := range inBag[i] {
			if inBag[p][v] {
				links[v]++
			}
		}
	}
	for v := 0; v < n; v++ {
		if occ[v] > 0 && links[v] != occ[v]-1 {
			return fmt.Errorf("treedec: occurrences of vertex %d are not connected (%d bags, %d links)", v, occ[v], links[v])
		}
	}
	return nil
}

// vertexOccurrences builds the vertex→bags index shared by BagContaining,
// Validate and Nice.AssignScopes: occ[v] lists the nodes whose bag contains
// vertex v, in the given node order (nil means 0..len(bags)-1). The index is
// sized by the largest vertex seen; vertices beyond it simply have no
// occurrences.
func vertexOccurrences(bags [][]int, order []int) [][]int {
	max := -1
	for _, b := range bags {
		for _, v := range b {
			if v > max {
				max = v
			}
		}
	}
	occ := make([][]int, max+1)
	if order == nil {
		for i, b := range bags {
			for _, v := range b {
				occ[v] = append(occ[v], i)
			}
		}
		return occ
	}
	for _, i := range order {
		for _, v := range bags[i] {
			occ[v] = append(occ[v], i)
		}
	}
	return occ
}

// occurrencesOf returns occ[v], or nil when v is outside the index.
func occurrencesOf(occ [][]int, v int) []int {
	if v < 0 || v >= len(occ) {
		return nil
	}
	return occ[v]
}

// findInOccurrences returns a node whose bag contains both u and v, or -1,
// scanning only the bags of u.
func findInOccurrences(bags [][]int, occ [][]int, u, v int) int {
	for _, i := range occurrencesOf(occ, u) {
		if contains(bags[i], v) {
			return i
		}
	}
	return -1
}

// findBagWith returns a node whose bag contains both u and v, or -1.
func (d *Decomposition) findBagWith(u, v int) int {
	return findInOccurrences(d.Bags, d.index(), u, v)
}

// index returns the cached vertex→bags index, rebuilding it when the number
// of bags has changed since it was built. Bags must not be mutated in place
// after the first indexed query (BagContaining, Validate); building a fresh
// Decomposition value is always safe.
func (d *Decomposition) index() [][]int {
	if d.occ == nil || d.occN != len(d.Bags) {
		d.occ = vertexOccurrences(d.Bags, nil)
		d.occN = len(d.Bags)
	}
	return d.occ
}

// BagContaining returns a node whose bag contains all the given vertices, or
// -1 if none does. Any clique of the graph is contained in some bag of a
// valid decomposition, so this succeeds for fact scopes and gate scopes.
// Only the occurrence list of the rarest vertex is scanned.
func (d *Decomposition) BagContaining(vs []int) int {
	if len(vs) == 0 {
		if len(d.Bags) == 0 {
			return -1
		}
		return 0
	}
	occ := d.index()
	best := vs[0]
	for _, v := range vs[1:] {
		if len(occurrencesOf(occ, v)) < len(occurrencesOf(occ, best)) {
			best = v
		}
	}
	for _, i := range occurrencesOf(occ, best) {
		all := true
		for _, v := range vs {
			if !contains(d.Bags[i], v) {
				all = false
				break
			}
		}
		if all {
			return i
		}
	}
	return -1
}

// Heuristic selects the vertex elimination heuristic for Decompose.
type Heuristic int

const (
	// MinDegree eliminates a vertex of minimum degree at each step. Fast,
	// good on sparse graphs.
	MinDegree Heuristic = iota
	// MinFill eliminates a vertex whose elimination adds the fewest fill
	// edges. Slower, usually tighter widths.
	MinFill
)

// Decompose computes a tree decomposition of g by vertex elimination with
// the chosen heuristic. The result is valid for any graph; its width is
// optimal on chordal graphs and a heuristic upper bound otherwise.
func Decompose(g *Graph, h Heuristic) *Decomposition {
	order := EliminationOrder(g, h)
	return FromEliminationOrder(g, order)
}

// EliminationOrder returns a vertex elimination order chosen greedily by the
// heuristic. Ties are broken by vertex index, for determinism.
func EliminationOrder(g *Graph, h Heuristic) []int {
	if h == MinDegree {
		return minDegreeOrder(g)
	}
	return minFillOrder(g)
}

// minFillOrder implements the min-fill heuristic with incremental score
// maintenance: instead of recomputing the fill-in of every live vertex at
// every step (O(n) fillIn scans per elimination), scores are kept in a heap
// and recomputed only for the vertices whose fill-in can actually have
// changed. Eliminating v changes the fill-in of
//
//   - every neighbour of v (its neighbourhood loses v and gains the new
//     clique edges), and
//   - every common neighbour of the endpoints of a newly added fill edge
//     {u,w} (the pair u,w inside its neighbourhood is no longer missing).
//
// No other vertex's neighbourhood or induced edges change, so this dirty set
// is exact and the produced order is identical to a full greedy rescan
// (argmin by score, ties to the lowest vertex index).
func minFillOrder(g *Graph) []int {
	n := g.N()
	work := g.Clone()
	eliminated := make([]bool, n)
	score := make([]int, n)
	h := make(degreeHeap, 0, n)
	for v := 0; v < n; v++ {
		score[v] = fillIn(work, v)
		h = append(h, degreeEntry{deg: score[v], vertex: v})
	}
	heap.Init(&h)
	order := make([]int, 0, n)
	marked := make([]bool, n)
	var dirty []int
	var added [][2]int
	for len(order) < n {
		e := heap.Pop(&h).(degreeEntry)
		v := e.vertex
		if eliminated[v] {
			continue
		}
		if e.deg != score[v] {
			heap.Push(&h, degreeEntry{deg: score[v], vertex: v}) // stale entry
			continue
		}
		order = append(order, v)
		eliminated[v] = true
		ns := work.Neighbors(v)
		dirty = dirty[:0]
		mark := func(u int) {
			if !marked[u] && !eliminated[u] {
				marked[u] = true
				dirty = append(dirty, u)
			}
		}
		// Turn the neighbourhood into a clique, remembering the fill edges.
		added = added[:0]
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if !work.HasEdge(ns[i], ns[j]) {
					added = append(added, [2]int{ns[i], ns[j]})
				}
			}
		}
		for _, uw := range added {
			work.AddEdge(uw[0], uw[1])
		}
		// Detach v.
		for _, u := range ns {
			delete(work.adj[u], v)
			mark(u)
		}
		work.adj[v] = make(map[int]struct{})
		// Common neighbours of each new edge lose one missing pair.
		for _, uw := range added {
			u, w := uw[0], uw[1]
			if len(work.adj[w]) < len(work.adj[u]) {
				u, w = w, u
			}
			for x := range work.adj[u] {
				if work.HasEdge(x, w) {
					mark(x)
				}
			}
		}
		for _, u := range dirty {
			marked[u] = false
			score[u] = fillIn(work, u)
			heap.Push(&h, degreeEntry{deg: score[u], vertex: u})
		}
	}
	return order
}

// minDegreeOrder implements the min-degree heuristic with a lazy min-heap,
// so that large sparse graphs (the benchmark instances) decompose in
// near-linear time.
func minDegreeOrder(g *Graph) []int {
	n := g.N()
	work := g.Clone()
	eliminated := make([]bool, n)
	h := &degreeHeap{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		heap.Push(h, degreeEntry{deg: work.Degree(v), vertex: v})
	}
	order := make([]int, 0, n)
	for len(order) < n {
		e := heap.Pop(h).(degreeEntry)
		if eliminated[e.vertex] || work.Degree(e.vertex) != e.deg {
			if !eliminated[e.vertex] {
				heap.Push(h, degreeEntry{deg: work.Degree(e.vertex), vertex: e.vertex})
			}
			continue // stale entry
		}
		v := e.vertex
		order = append(order, v)
		ns := work.Neighbors(v)
		eliminateVertex(work, v)
		eliminated[v] = true
		for _, u := range ns {
			heap.Push(h, degreeEntry{deg: work.Degree(u), vertex: u})
		}
	}
	return order
}

type degreeEntry struct {
	deg    int
	vertex int
}

type degreeHeap []degreeEntry

func (h degreeHeap) Len() int { return len(h) }
func (h degreeHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].vertex < h[j].vertex
}
func (h degreeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *degreeHeap) Push(x interface{}) { *h = append(*h, x.(degreeEntry)) }
func (h *degreeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// fillIn counts the edges that eliminating v would add between its
// neighbours.
func fillIn(g *Graph, v int) int {
	ns := g.Neighbors(v)
	fill := 0
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			if !g.HasEdge(ns[i], ns[j]) {
				fill++
			}
		}
	}
	return fill
}

// eliminateVertex connects the neighbourhood of v into a clique and removes
// v from the working graph.
func eliminateVertex(g *Graph, v int) {
	ns := g.Neighbors(v)
	g.AddClique(ns)
	for _, u := range ns {
		delete(g.adj[u], v)
	}
	g.adj[v] = make(map[int]struct{})
}

// FromEliminationOrder builds a tree decomposition from an elimination
// order using the standard construction: the bag of the i-th eliminated
// vertex v is {v} plus the neighbours of v in the fill-in graph that are
// eliminated later; its parent is the bag of the earliest-later-eliminated
// such neighbour.
func FromEliminationOrder(g *Graph, order []int) *Decomposition {
	n := g.N()
	if len(order) != n {
		panic("treedec: elimination order must cover all vertices")
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	work := g.Clone()
	// laterNeighbors[i] = neighbours of order[i] at elimination time.
	laterNeighbors := make([][]int, n)
	for i, v := range order {
		ns := work.Neighbors(v)
		laterNeighbors[i] = ns
		eliminateVertex(work, v)
	}
	d := &Decomposition{
		Bags:   make([][]int, n),
		Parent: make([]int, n),
	}
	for i, v := range order {
		bag := append([]int{v}, laterNeighbors[i]...)
		sort.Ints(bag)
		d.Bags[i] = bag
		// Parent: node of the earliest-eliminated later neighbour.
		parent := -1
		bestPos := n
		for _, u := range laterNeighbors[i] {
			if pos[u] < bestPos {
				bestPos = pos[u]
				parent = pos[u]
			}
		}
		d.Parent[i] = parent
	}
	if n == 0 {
		// A single empty bag so that downstream DP always has a root.
		d.Bags = [][]int{{}}
		d.Parent = []int{-1}
	}
	return d
}

// Treewidth returns a heuristic upper bound on the treewidth of g, taking
// the better of min-degree and min-fill. Exact on chordal graphs.
func Treewidth(g *Graph) int {
	a := Decompose(g, MinDegree).Width()
	b := Decompose(g, MinFill).Width()
	if b < a {
		return b
	}
	return a
}
