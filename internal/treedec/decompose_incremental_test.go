package treedec

import (
	"math/rand"
	"testing"
)

// naiveMinFillOrder is the pre-optimization reference: full greedy rescan of
// every live vertex at every step, ties to the lowest vertex index.
func naiveMinFillOrder(g *Graph) []int {
	n := g.N()
	work := g.Clone()
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, 0
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			score := fillIn(work, v)
			if best < 0 || score < bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		eliminateVertex(work, best)
		eliminated[best] = true
	}
	return order
}

func TestMinFillIncrementalMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(24)
		g := randomGraph(r, n, 0.08+0.4*r.Float64())
		want := naiveMinFillOrder(g)
		got := minFillOrder(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): incremental order %v differs from naive %v at %d",
					trial, n, got, want, i)
			}
		}
	}
}

func TestBagContainingIndexed(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(20), 0.3)
		d := Decompose(g, MinFill)
		// Every edge must be locatable through the index.
		for _, e := range g.Edges() {
			if d.BagContaining([]int{e[0], e[1]}) < 0 {
				t.Fatalf("trial %d: edge %v not found in any bag", trial, e)
			}
		}
		// A vertex beyond the domain is never found and must not panic.
		if d.BagContaining([]int{g.N() + 5}) != -1 {
			t.Fatalf("trial %d: found bag for out-of-range vertex", trial)
		}
	}
}
