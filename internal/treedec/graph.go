// Package treedec implements undirected graphs and tree decompositions.
//
// Tree decompositions are the structural restriction at the heart of the
// paper: Theorem 1 and Theorem 2 apply to instances (and annotation circuits)
// whose Gaifman graph has bounded treewidth. The package provides elimination
// based heuristics (min-degree, min-fill) that are exact on chordal graphs
// and near-optimal on the partial k-trees used in the experiments, plus nice
// decompositions, which the dynamic programming of internal/core consumes.
package treedec

import (
	"fmt"
	"sort"
)

// Graph is a finite undirected graph over vertices 0..n-1. The zero value is
// an empty graph; use NewGraph or AddVertex to grow it.
type Graph struct {
	adj []map[int]struct{}
}

// NewGraph returns a graph with n isolated vertices.
func NewGraph(n int) *Graph {
	g := &Graph{adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddVertex adds a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, make(map[int]struct{}))
	return len(g.adj) - 1
}

// AddEdge adds the undirected edge {u, v}. Self-loops are ignored, parallel
// edges are collapsed. Panics if a vertex is out of range.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		panic(fmt.Sprintf("treedec: edge {%d,%d} out of range (n=%d)", u, v, len(g.adj)))
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// AddClique adds all edges between the given vertices. Used to make the
// scopes of facts (and of circuit gates) into cliques, so that every fact is
// covered by a single bag of any valid decomposition.
func (g *Graph) AddClique(vs []int) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbours of v.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// Edges returns all edges {u, v} with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	m := 0
	for u := range g.adj {
		m += len(g.adj[u])
	}
	return m / 2
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := NewGraph(g.N())
	for u := range g.adj {
		for v := range g.adj[u] {
			h.adj[u][v] = struct{}{}
		}
	}
	return h
}

// Components returns the connected components of g as sorted vertex lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Partition records the connected-component structure of a graph: Comp[v] is
// the component index of vertex v (components are numbered 0..N-1 in order of
// their smallest vertex). It is the splitting step of the sharded plan layer:
// a dynamic program over a disconnected (joint) graph factors into one
// independent program per component, so plans can be compiled, evaluated and
// maintained shard by shard.
type Partition struct {
	Comp []int // Comp[v] = component index of vertex v
	N    int   // number of components
}

// Members returns the vertices of every component, sorted, indexed by
// component.
func (p Partition) Members() [][]int {
	out := make([][]int, p.N)
	for v, c := range p.Comp {
		out[c] = append(out[c], v)
	}
	return out
}

// Components returns the connected-component partition of g. Vertices are
// visited in increasing order, so component indices are deterministic: the
// component holding the smallest unseen vertex gets the next index.
func Components(g *Graph) Partition {
	p := Partition{Comp: make([]int, g.N())}
	for i := range p.Comp {
		p.Comp[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if p.Comp[s] >= 0 {
			continue
		}
		c := p.N
		p.N++
		stack := []int{s}
		p.Comp[s] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for u := range g.adj[v] {
				if p.Comp[u] < 0 {
					p.Comp[u] = c
					stack = append(stack, u)
				}
			}
		}
	}
	return p
}

// Path returns a path graph on n vertices (treewidth 1).
func Path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns a cycle on n vertices (treewidth 2 for n >= 3).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Complete returns the complete graph on n vertices (treewidth n-1).
func Complete(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Grid returns the r x c grid graph (treewidth min(r, c)).
func Grid(r, c int) *Graph {
	g := NewGraph(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.AddEdge(v, v+1)
			}
			if i+1 < r {
				g.AddEdge(v, v+c)
			}
		}
	}
	return g
}
