package treedec

import (
	"fmt"
	"sort"
)

// NiceKind classifies the nodes of a nice tree decomposition.
type NiceKind int

const (
	// NiceLeaf has an empty bag and no children.
	NiceLeaf NiceKind = iota
	// NiceIntroduce has one child; its bag is the child's bag plus Vertex.
	NiceIntroduce
	// NiceForget has one child; its bag is the child's bag minus Vertex.
	NiceForget
	// NiceJoin has two children whose bags both equal its own bag.
	NiceJoin
)

func (k NiceKind) String() string {
	switch k {
	case NiceLeaf:
		return "leaf"
	case NiceIntroduce:
		return "introduce"
	case NiceForget:
		return "forget"
	case NiceJoin:
		return "join"
	}
	return "unknown"
}

// NiceNode is one node of a nice tree decomposition.
type NiceNode struct {
	Kind     NiceKind
	Vertex   int   // the introduced/forgotten vertex, -1 otherwise
	Bag      []int // sorted
	Children []int // node indices; 0, 1 or 2 entries
}

// Nice is a nice (rooted, binary, single-operation) tree decomposition. Its
// root always has an empty bag, so dynamic programs finish with a single
// state space of size independent of the instance.
type Nice struct {
	Nodes []NiceNode
	Root  int
}

// Width returns the width of the nice decomposition.
func (n *Nice) Width() int {
	w := 0
	for _, nd := range n.Nodes {
		if len(nd.Bag) > w {
			w = len(nd.Bag)
		}
	}
	return w - 1
}

// NumNodes returns the number of nice nodes.
func (n *Nice) NumNodes() int { return len(n.Nodes) }

func (n *Nice) add(nd NiceNode) int {
	n.Nodes = append(n.Nodes, nd)
	return len(n.Nodes) - 1
}

// MakeNice converts a tree decomposition into a nice one rooted at an empty
// bag. The width is unchanged.
func MakeNice(d *Decomposition) *Nice {
	nice := &Nice{}
	children := d.Children()
	var tops []int // empty-bag tops, one per forest root
	for _, r := range d.Roots() {
		top := nice.buildSubtree(d, children, r)
		top = nice.forgetChain(top, d.Bags[r], nil)
		tops = append(tops, top)
	}
	if len(tops) == 0 {
		nice.Root = nice.add(NiceNode{Kind: NiceLeaf, Vertex: -1, Bag: nil})
		return nice
	}
	// Join the empty-bag tops of a forest pairwise.
	root := tops[0]
	for _, t := range tops[1:] {
		root = nice.add(NiceNode{Kind: NiceJoin, Vertex: -1, Bag: nil, Children: []int{root, t}})
	}
	nice.Root = root
	return nice
}

// buildSubtree returns the index of a nice node whose bag equals d.Bags[t].
func (n *Nice) buildSubtree(d *Decomposition, children [][]int, t int) int {
	bag := d.Bags[t]
	if len(children[t]) == 0 {
		leaf := n.add(NiceNode{Kind: NiceLeaf, Vertex: -1, Bag: nil})
		return n.introduceChain(leaf, nil, bag)
	}
	var tops []int
	for _, c := range children[t] {
		sub := n.buildSubtree(d, children, c)
		// Morph the child's bag into t's bag: forget then introduce.
		mid := n.forgetChain(sub, d.Bags[c], bag)
		top := n.introduceChain(mid, intersect(d.Bags[c], bag), bag)
		tops = append(tops, top)
	}
	res := tops[0]
	for _, t2 := range tops[1:] {
		res = n.add(NiceNode{Kind: NiceJoin, Vertex: -1, Bag: sortedCopy(bag), Children: []int{res, t2}})
	}
	return res
}

// forgetChain adds forget nodes removing every vertex of from that is not in
// keep, returning the top node index.
func (n *Nice) forgetChain(top int, from, keep []int) int {
	keepSet := toSet(keep)
	bag := sortedCopy(from)
	// Forget in decreasing order for determinism.
	for i := len(bag) - 1; i >= 0; i-- {
		v := bag[i]
		if keepSet[v] {
			continue
		}
		newBag := removeOne(bag, v)
		top = n.add(NiceNode{Kind: NiceForget, Vertex: v, Bag: newBag, Children: []int{top}})
		bag = newBag
	}
	return top
}

// introduceChain adds introduce nodes for every vertex of target missing
// from base, returning the top node index.
func (n *Nice) introduceChain(top int, base, target []int) int {
	baseSet := toSet(base)
	bag := sortedCopy(base)
	for _, v := range target {
		if baseSet[v] {
			continue
		}
		bag = insertOne(bag, v)
		top = n.add(NiceNode{Kind: NiceIntroduce, Vertex: v, Bag: sortedCopy(bag), Children: []int{top}})
	}
	return top
}

// Validate checks the structural invariants of the nice decomposition and
// that it is a valid tree decomposition of g.
func (n *Nice) Validate(g *Graph) error {
	for i, nd := range n.Nodes {
		switch nd.Kind {
		case NiceLeaf:
			if len(nd.Children) != 0 || len(nd.Bag) != 0 {
				return fmt.Errorf("treedec: leaf node %d malformed", i)
			}
		case NiceIntroduce, NiceForget:
			if len(nd.Children) != 1 {
				return fmt.Errorf("treedec: %s node %d must have one child", nd.Kind, i)
			}
			child := n.Nodes[nd.Children[0]]
			var want []int
			if nd.Kind == NiceIntroduce {
				want = insertOne(sortedCopy(child.Bag), nd.Vertex)
				if contains(child.Bag, nd.Vertex) {
					return fmt.Errorf("treedec: introduce node %d reintroduces vertex %d", i, nd.Vertex)
				}
			} else {
				if !contains(child.Bag, nd.Vertex) {
					return fmt.Errorf("treedec: forget node %d forgets absent vertex %d", i, nd.Vertex)
				}
				want = removeOne(child.Bag, nd.Vertex)
			}
			if !equalInts(nd.Bag, want) {
				return fmt.Errorf("treedec: node %d bag %v inconsistent with child (want %v)", i, nd.Bag, want)
			}
		case NiceJoin:
			if len(nd.Children) != 2 {
				return fmt.Errorf("treedec: join node %d must have two children", i)
			}
			for _, c := range nd.Children {
				if !equalInts(nd.Bag, n.Nodes[c].Bag) {
					return fmt.Errorf("treedec: join node %d bag differs from child %d", i, c)
				}
			}
		}
	}
	if len(n.Nodes[n.Root].Bag) != 0 {
		return fmt.Errorf("treedec: root bag is not empty")
	}
	// Check it is a valid decomposition of g by converting to the plain form.
	return n.AsDecomposition().Validate(g)
}

// AsDecomposition returns the nice decomposition viewed as a plain one.
func (n *Nice) AsDecomposition() *Decomposition {
	d := &Decomposition{
		Bags:   make([][]int, len(n.Nodes)),
		Parent: make([]int, len(n.Nodes)),
	}
	for i := range d.Parent {
		d.Parent[i] = -1
	}
	for i, nd := range n.Nodes {
		d.Bags[i] = sortedCopy(nd.Bag)
		for _, c := range nd.Children {
			d.Parent[c] = i
		}
	}
	return d
}

// PostOrder returns the node indices of the subtree under Root in
// post-order (children before parents), which is the evaluation order of
// every bottom-up DP.
func (n *Nice) PostOrder() []int {
	var order []int
	var visit func(int)
	visit = func(t int) {
		for _, c := range n.Nodes[t].Children {
			visit(c)
		}
		order = append(order, t)
	}
	visit(n.Root)
	return order
}

// AssignScopes maps each scope (a set of vertices that forms a clique of the
// decomposed graph, e.g. the arguments of a fact) to a single nice node whose
// bag contains it. Returns an error if some scope fits in no bag.
//
// Scopes are assigned to the post-order-first matching node, so each scope is
// processed exactly once by the DP.
func (n *Nice) AssignScopes(scopes [][]int) ([]int, error) {
	order := n.PostOrder()
	// The nodes containing each vertex, in post-order, so each scope only
	// inspects the occurrence list of its rarest vertex. The index is built
	// by the same helper that backs Decomposition.BagContaining.
	bags := make([][]int, len(n.Nodes))
	for i, nd := range n.Nodes {
		bags[i] = nd.Bag
	}
	occ := vertexOccurrences(bags, order)
	assign := make([]int, len(scopes))
	for si, scope := range scopes {
		assign[si] = -1
		if len(scope) == 0 {
			// Scope-free entries go to the first leaf.
			for _, t := range order {
				if len(n.Nodes[t].Children) == 0 {
					assign[si] = t
					break
				}
			}
			continue
		}
		// Rarest vertex first.
		best := scope[0]
		for _, v := range scope[1:] {
			if len(occurrencesOf(occ, v)) < len(occurrencesOf(occ, best)) {
				best = v
			}
		}
		for _, t := range occurrencesOf(occ, best) {
			if containsAll(n.Nodes[t].Bag, scope) {
				assign[si] = t
				break
			}
		}
		if assign[si] < 0 {
			return nil, fmt.Errorf("treedec: scope %v fits in no bag", scope)
		}
	}
	return assign, nil
}

func toSet(vs []int) map[int]bool {
	m := make(map[int]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func sortedCopy(vs []int) []int {
	out := append([]int(nil), vs...)
	sort.Ints(out)
	return out
}

func removeOne(vs []int, v int) []int {
	out := make([]int, 0, len(vs))
	for _, x := range vs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func insertOne(vs []int, v int) []int {
	out := append(append([]int(nil), vs...), v)
	sort.Ints(out)
	return out
}

func contains(vs []int, v int) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func containsAll(vs, want []int) bool {
	set := toSet(vs)
	for _, v := range want {
		if !set[v] {
			return false
		}
	}
	return true
}

func intersect(a, b []int) []int {
	set := toSet(b)
	var out []int
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
