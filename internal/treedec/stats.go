package treedec

// Stats summarizes the shape of a (nice) tree decomposition. Width bounds the
// table sizes of the dynamic programs; Depth bounds the number of bags an
// incremental update has to recompute (the dirty root-path spine of
// internal/incr), so shallow decompositions serve updates faster.
type Stats struct {
	Nodes  int // tree nodes
	Width  int // max bag size minus one (-1 for the empty decomposition)
	MaxBag int // max bag size
	Depth  int // longest root-to-node path, in edges
}

// Depths returns, for every node under Root, its distance from the root in
// edges (the root has depth 0). Nodes not reachable from Root keep depth 0.
func (n *Nice) Depths() []int {
	depth := make([]int, len(n.Nodes))
	var visit func(t, d int)
	visit = func(t, d int) {
		depth[t] = d
		for _, c := range n.Nodes[t].Children {
			visit(c, d+1)
		}
	}
	if len(n.Nodes) > 0 {
		visit(n.Root, 0)
	}
	return depth
}

// Depth returns the depth of the nice decomposition: the longest
// root-to-leaf path, in edges.
func (n *Nice) Depth() int {
	max := 0
	for _, d := range n.Depths() {
		if d > max {
			max = d
		}
	}
	return max
}

// Stats returns the shape statistics of the nice decomposition.
func (n *Nice) Stats() Stats {
	maxBag := 0
	for _, nd := range n.Nodes {
		if len(nd.Bag) > maxBag {
			maxBag = len(nd.Bag)
		}
	}
	return Stats{
		Nodes:  len(n.Nodes),
		Width:  maxBag - 1,
		MaxBag: maxBag,
		Depth:  n.Depth(),
	}
}

// AttachPoint returns the shallowest node whose bag contains every vertex of
// scope, or -1 when no bag covers the scope. It is the attach-point search of
// incremental fact insertion: a new fact whose argument vertices all sit in
// one existing bag can be absorbed by splicing nodes above that bag, and the
// shallower the bag, the shorter the dirty spine every later update on that
// fact has to recompute. An empty scope attaches at the root.
func (n *Nice) AttachPoint(scope []int) int {
	if len(n.Nodes) == 0 {
		return -1
	}
	if len(scope) == 0 {
		return n.Root
	}
	depths := n.Depths()
	bags := make([][]int, len(n.Nodes))
	for i, nd := range n.Nodes {
		bags[i] = nd.Bag
	}
	occ := vertexOccurrences(bags, nil)
	// Scan only the occurrence list of the rarest vertex of the scope.
	best := scope[0]
	for _, v := range scope[1:] {
		if len(occurrencesOf(occ, v)) < len(occurrencesOf(occ, best)) {
			best = v
		}
	}
	node := -1
	for _, t := range occurrencesOf(occ, best) {
		if containsAll(bags[t], scope) && (node < 0 || depths[t] < depths[node]) {
			node = t
		}
	}
	return node
}

// Depth returns the depth of the decomposition forest: the longest
// root-to-node path, in edges.
func (d *Decomposition) Depth() int {
	depth := make([]int, len(d.Parent))
	for i := range depth {
		depth[i] = -1
	}
	max := 0
	var at func(i int) int
	at = func(i int) int {
		if depth[i] >= 0 {
			return depth[i]
		}
		depth[i] = 0 // breaks cycles defensively; Validate rejects them anyway
		if p := d.Parent[i]; p >= 0 {
			depth[i] = at(p) + 1
		}
		return depth[i]
	}
	for i := range d.Parent {
		if v := at(i); v > max {
			max = v
		}
	}
	return max
}

// Stats returns the shape statistics of the decomposition.
func (d *Decomposition) Stats() Stats {
	maxBag := 0
	for _, b := range d.Bags {
		if len(b) > maxBag {
			maxBag = len(b)
		}
	}
	return Stats{
		Nodes:  len(d.Bags),
		Width:  maxBag - 1,
		MaxBag: maxBag,
		Depth:  d.Depth(),
	}
}
