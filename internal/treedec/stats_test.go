package treedec

import "testing"

// pathGraph returns the path 0-1-...-(n-1).
func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestNiceDepthAndStats(t *testing.T) {
	g := pathGraph(6)
	d := Decompose(g, MinDegree)
	nice := MakeNice(d)
	if err := nice.Validate(g); err != nil {
		t.Fatal(err)
	}
	depths := nice.Depths()
	if depths[nice.Root] != 0 {
		t.Errorf("root depth = %d", depths[nice.Root])
	}
	for i, nd := range nice.Nodes {
		for _, c := range nd.Children {
			if depths[c] != depths[i]+1 {
				t.Errorf("child %d depth %d, parent %d depth %d", c, depths[c], i, depths[i])
			}
		}
	}
	st := nice.Stats()
	if st.Nodes != nice.NumNodes() || st.Width != nice.Width() || st.MaxBag != st.Width+1 {
		t.Errorf("stats = %+v (nodes %d, width %d)", st, nice.NumNodes(), nice.Width())
	}
	if st.Depth != nice.Depth() || st.Depth <= 0 {
		t.Errorf("depth = %d", st.Depth)
	}

	ds := d.Stats()
	if ds.Width != d.Width() || ds.Nodes != d.NumNodes() {
		t.Errorf("decomposition stats = %+v", ds)
	}
	if ds.Depth <= 0 || ds.Depth >= d.NumNodes() {
		t.Errorf("decomposition depth = %d of %d nodes", ds.Depth, d.NumNodes())
	}
}

func TestAttachPoint(t *testing.T) {
	g := pathGraph(6)
	nice := MakeNice(Decompose(g, MinDegree))
	depths := nice.Depths()

	// Every edge of the path is a clique and must have a covering bag.
	for v := 0; v+1 < 6; v++ {
		at := nice.AttachPoint([]int{v, v + 1})
		if at < 0 {
			t.Fatalf("no attach point for edge {%d,%d}", v, v+1)
		}
		if !containsAll(nice.Nodes[at].Bag, []int{v, v + 1}) {
			t.Errorf("attach bag %v does not cover {%d,%d}", nice.Nodes[at].Bag, v, v+1)
		}
		// Shallowest: no covering node may be strictly shallower.
		for i, nd := range nice.Nodes {
			if containsAll(nd.Bag, []int{v, v + 1}) && depths[i] < depths[at] {
				t.Errorf("attach point %d (depth %d) not shallowest: node %d at depth %d", at, depths[at], i, depths[i])
			}
		}
	}

	// Non-adjacent endpoints share no bag on a path decomposition.
	if at := nice.AttachPoint([]int{0, 5}); at >= 0 {
		t.Errorf("unexpected covering bag %v for {0,5}", nice.Nodes[at].Bag)
	}
	// The empty scope attaches at the root.
	if at := nice.AttachPoint(nil); at != nice.Root {
		t.Errorf("empty scope attach = %d, want root %d", at, nice.Root)
	}
}
