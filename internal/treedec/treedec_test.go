package treedec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // parallel edge collapsed
	g.AddEdge(3, 3) // self-loop ignored
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge misbehaves")
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("Neighbors(1) = %v", ns)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Errorf("Components = %v, want 2 components", comps)
	}
}

func TestFamilies(t *testing.T) {
	if w := Treewidth(Path(10)); w != 1 {
		t.Errorf("treewidth(path) = %d, want 1", w)
	}
	if w := Treewidth(Cycle(10)); w != 2 {
		t.Errorf("treewidth(cycle) = %d, want 2", w)
	}
	if w := Treewidth(Complete(5)); w != 4 {
		t.Errorf("treewidth(K5) = %d, want 4", w)
	}
	// Grid treewidth min(r,c); heuristics may overshoot slightly but must be
	// >= the true value and small.
	w := Treewidth(Grid(3, 8))
	if w < 3 || w > 5 {
		t.Errorf("treewidth(3x8 grid) = %d, want in [3,5]", w)
	}
}

func TestDecomposeValidOnFamilies(t *testing.T) {
	graphs := map[string]*Graph{
		"path":     Path(12),
		"cycle":    Cycle(9),
		"complete": Complete(6),
		"grid":     Grid(4, 4),
		"single":   NewGraph(1),
		"empty":    NewGraph(0),
		"isolated": NewGraph(5),
	}
	for name, g := range graphs {
		for _, h := range []Heuristic{MinDegree, MinFill} {
			d := Decompose(g, h)
			if err := d.Validate(g); err != nil {
				t.Errorf("%s/%v: invalid decomposition: %v", name, h, err)
			}
		}
	}
}

func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestPropertyDecomposeAlwaysValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(14), r.Float64())
		d := Decompose(g, MinFill)
		if d.Validate(g) != nil {
			return false
		}
		d2 := Decompose(g, MinDegree)
		return d2.Validate(g) == nil
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyNicePreservesValidityAndWidth(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(12), r.Float64())
		d := Decompose(g, MinFill)
		nice := MakeNice(d)
		if nice.Validate(g) != nil {
			return false
		}
		return nice.Width() == d.Width()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestNiceStructure(t *testing.T) {
	g := Cycle(6)
	nice := MakeNice(Decompose(g, MinFill))
	if err := nice.Validate(g); err != nil {
		t.Fatalf("invalid nice decomposition: %v", err)
	}
	if len(nice.Nodes[nice.Root].Bag) != 0 {
		t.Error("root bag must be empty")
	}
	order := nice.PostOrder()
	if order[len(order)-1] != nice.Root {
		t.Error("post-order must end at root")
	}
	seen := make(map[int]bool)
	for _, i := range order {
		for _, c := range nice.Nodes[i].Children {
			if !seen[c] {
				t.Error("post-order visits parent before child")
			}
		}
		seen[i] = true
	}
}

func TestAssignScopes(t *testing.T) {
	g := Path(5)
	nice := MakeNice(Decompose(g, MinDegree))
	scopes := [][]int{{0, 1}, {1, 2}, {3, 4}, {2}}
	assign, err := nice.AssignScopes(scopes)
	if err != nil {
		t.Fatalf("AssignScopes: %v", err)
	}
	for i, nodeID := range assign {
		if !containsAll(nice.Nodes[nodeID].Bag, scopes[i]) {
			t.Errorf("scope %v assigned to bag %v", scopes[i], nice.Nodes[nodeID].Bag)
		}
	}
	// A scope that is not a clique of the graph may fit in no bag.
	if _, err := nice.AssignScopes([][]int{{0, 4}}); err == nil {
		t.Error("expected error for uncoverable scope")
	}
}

func TestValidateCatchesBrokenDecompositions(t *testing.T) {
	g := Path(3)
	// Missing edge coverage.
	d := &Decomposition{Bags: [][]int{{0, 1}, {2}}, Parent: []int{-1, 0}}
	if err := d.Validate(g); err == nil {
		t.Error("expected edge-coverage error")
	}
	// Missing vertex.
	d = &Decomposition{Bags: [][]int{{0, 1}}, Parent: []int{-1}}
	if err := d.Validate(g); err == nil {
		t.Error("expected vertex-coverage error")
	}
	// Disconnected occurrences of vertex 0.
	d = &Decomposition{
		Bags:   [][]int{{0, 1}, {1, 2}, {0}},
		Parent: []int{-1, 0, 1},
	}
	if err := d.Validate(g); err == nil {
		t.Error("expected connectivity error")
	}
	// Valid one.
	d = &Decomposition{Bags: [][]int{{0, 1}, {1, 2}}, Parent: []int{-1, 0}}
	if err := d.Validate(g); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFromEliminationOrderPathOptimal(t *testing.T) {
	g := Path(8)
	d := FromEliminationOrder(g, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err := d.Validate(g); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if d.Width() != 1 {
		t.Errorf("width = %d, want 1", d.Width())
	}
}

func TestBagContaining(t *testing.T) {
	d := &Decomposition{Bags: [][]int{{0, 1, 2}, {2, 3}}, Parent: []int{-1, 0}}
	if i := d.BagContaining([]int{1, 2}); i != 0 {
		t.Errorf("BagContaining({1,2}) = %d, want 0", i)
	}
	if i := d.BagContaining([]int{1, 3}); i != -1 {
		t.Errorf("BagContaining({1,3}) = %d, want -1", i)
	}
}

func TestDecompositionChildrenRoots(t *testing.T) {
	d := &Decomposition{Bags: [][]int{{0}, {0}, {0}}, Parent: []int{-1, 0, 0}}
	ch := d.Children()
	if len(ch[0]) != 2 {
		t.Errorf("children of root = %v", ch[0])
	}
	if rs := d.Roots(); len(rs) != 1 || rs[0] != 0 {
		t.Errorf("roots = %v", rs)
	}
}

func TestComponents(t *testing.T) {
	// A path, an isolated vertex, and a triangle: three components.
	g := NewGraph(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 4)
	p := Components(g)
	if p.N != 3 {
		t.Fatalf("N = %d, want 3", p.N)
	}
	wantComp := []int{0, 0, 0, 1, 2, 2, 2}
	for v, c := range p.Comp {
		if c != wantComp[v] {
			t.Errorf("vertex %d in component %d, want %d", v, c, wantComp[v])
		}
	}
	members := p.Members()
	if got := members[2]; len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Errorf("component 2 = %v", got)
	}
	if Components(NewGraph(0)).N != 0 {
		t.Error("empty graph has components")
	}
}
