package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the writable handle a Backend hands out for one log segment or
// snapshot: sequential appends, an explicit durability barrier, close.
type File interface {
	Write(p []byte) (int, error)
	// Sync blocks until every byte written so far is durable.
	Sync() error
	Close() error
}

// Backend abstracts the directory the WAL lives in, so the same pipeline and
// recovery code runs over the real filesystem (DirBackend), an in-memory map
// (MemBackend, for tests and crash-point cloning), a fault injector
// (FaultBackend), or a later object-store target. Names are flat (no
// subdirectories); List returns them sorted.
type Backend interface {
	// Create opens a fresh writable file, truncating any previous content.
	Create(name string) (File, error)
	// ReadFile returns the full content of the named file.
	ReadFile(name string) ([]byte, error)
	// List returns every file name, sorted.
	List() ([]string, error)
	Remove(name string) error
	Rename(oldName, newName string) error
	// SyncDir makes directory-level mutations (Create, Rename, Remove)
	// durable — the second half of the atomic-rename snapshot protocol.
	SyncDir() error
}

// --- filesystem backend ---

// DirBackend stores WAL files in one directory on the real filesystem. It is
// the production backend: File.Sync is fsync, SyncDir fsyncs the directory.
type DirBackend struct {
	dir string
}

// NewDirBackend opens (creating if needed) the directory at dir.
func NewDirBackend(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &DirBackend{dir: dir}, nil
}

// Dir returns the directory path the backend writes to.
func (d *DirBackend) Dir() string { return d.dir }

func (d *DirBackend) Create(name string) (File, error) {
	return os.Create(filepath.Join(d.dir, name))
}

func (d *DirBackend) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d *DirBackend) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirBackend) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d *DirBackend) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(d.dir, oldName), filepath.Join(d.dir, newName))
}

func (d *DirBackend) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// --- in-memory backend ---

// MemBackend keeps every file in memory: the test backend. Clone snapshots
// the whole directory at an arbitrary instant — the crash-point primitive of
// the recovery property tests — and Truncate cuts a file at a byte offset to
// model a torn final write.
type MemBackend struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: map[string][]byte{}}
}

type memFile struct {
	b    *MemBackend
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.b.mu.Lock()
	defer f.b.mu.Unlock()
	f.b.files[f.name] = append(f.b.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (b *MemBackend) Create(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = nil
	return &memFile{b: b, name: name}, nil
}

func (b *MemBackend) ReadFile(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: no file %q", name)
	}
	return append([]byte(nil), data...), nil
}

func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.files))
	for name := range b.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("wal: no file %q", name)
	}
	delete(b.files, name)
	return nil
}

func (b *MemBackend) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.files[oldName]
	if !ok {
		return fmt.Errorf("wal: no file %q", oldName)
	}
	b.files[newName] = data
	delete(b.files, oldName)
	return nil
}

func (b *MemBackend) SyncDir() error { return nil }

// Clone returns a deep copy of the backend's current content: the state a
// crash at this instant would leave on disk (MemBackend models every write
// as immediately durable; pair with Truncate to model a torn final write).
func (b *MemBackend) Clone() *MemBackend {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := NewMemBackend()
	for name, data := range b.files {
		c.files[name] = append([]byte(nil), data...)
	}
	return c
}

// Truncate cuts the named file to n bytes (a no-op when it is already
// shorter): the torn-final-record primitive of the recovery tests.
func (b *MemBackend) Truncate(name string, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if data, ok := b.files[name]; ok && n < len(data) {
		b.files[name] = data[:n]
	}
}

// Size returns the current length of the named file in bytes (0 when
// absent).
func (b *MemBackend) Size(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.files[name])
}
