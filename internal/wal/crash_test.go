package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/incr"
	"repro/internal/rel"
)

// faultHarness is newHarness over a FaultBackend: the WAL writes through the
// injector, the MemBackend underneath holds what "disk" would after a
// crash. Faults are armed by the caller AFTER the harness (including its
// baseline snapshot) is up.
func faultHarness(t *testing.T, opts Options) (*harness, *FaultBackend) {
	t.Helper()
	mem := NewMemBackend()
	fb := NewFaultBackend(mem)
	opts.Backend = fb
	w, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 {
		t.Fatalf("empty backend recovered seq %d", rec.Seq)
	}
	return attachHarness(t, mem, w), fb
}

// TestInjectedWriteErrorFailsCommitAndPoisons injects a write failure
// mid-workload: the committing client gets the error, the store refuses
// further commits (it can no longer promise durability), and the bytes that
// did reach disk still recover to the last acknowledged commit.
func TestInjectedWriteErrorFailsCommitAndPoisons(t *testing.T) {
	h, fb := faultHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 15; i++ {
		h.step(r, i)
	}
	h.mark(false)

	fb.FailWrite = fb.Writes() + 1 // next write fails
	err := h.store.SetProb(0, 0.123)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("commit over failing write: %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "not durable") {
		t.Errorf("error does not say the commit is not durable: %v", err)
	}
	if err := h.store.SetProb(0, 0.5); err == nil {
		t.Fatal("store accepted a commit after durability failed")
	}
	if st := h.w.Stats(); st.Err == "" {
		t.Error("WAL stats do not report the sticky error")
	}
	h.checkRecovered(h.mem, 0, "after injected write error")
}

// TestInjectedSyncErrorFailsCommitAndPoisons is the same contract for a
// failing fsync under SyncAlways: acknowledged-means-synced, so a failed
// sync must fail the commit.
func TestInjectedSyncErrorFailsCommitAndPoisons(t *testing.T) {
	h, fb := faultHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 15; i++ {
		h.step(r, i)
	}
	h.mark(false)

	fb.FailSync = fb.Syncs() + 1
	err := h.store.SetProb(0, 0.321)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("commit over failing sync: %v, want ErrInjected", err)
	}
	if err := h.store.SetProb(0, 0.5); err == nil {
		t.Fatal("store accepted a commit after a failed fsync")
	}
	// The record's bytes were written before the fsync failed, so recovery
	// may land on either side of the unacknowledged commit — but never
	// beyond it, and never on a corrupt state.
	rec, err := Replay(h.mem)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	acked := h.states[0].Seq
	if rec.Seq != acked && rec.Seq != acked+1 {
		t.Fatalf("recovered seq %d, want %d (last acked) or %d (written, unacked)", rec.Seq, acked, acked+1)
	}
	if rec.Seq == acked {
		h.checkState(rec, 0, "after injected sync error")
	}
}

// crashStep is the fixed workload of the crash-point sweep: deterministic
// (no liveness races — it never deletes), so the dry run's per-sequence
// states are an exact oracle for every crashed run.
func crashStep(store *incr.Store, i int) error {
	switch i % 4 {
	case 0, 2:
		return store.SetProb(i%18, float64(i%9+1)/10)
	case 1:
		_, err := store.Insert(rel.NewFact("R", fmt.Sprintf("c%d", i)), 0.4)
		return err
	default:
		return store.ApplyBatch([]incr.Update{
			{Op: incr.OpSet, ID: (i + 5) % 18, P: 0.35},
			{Op: incr.OpInsert, Fact: rel.NewFact("T", fmt.Sprintf("d%d", i)), P: 0.6},
		})
	}
}

// TestCrashAtEveryWriteOffset sweeps a torn-write kernel-panic point across
// every byte offset the workload appends: wherever the crash lands — mid
// record, at a frame boundary, inside a group-commit batch — recovery from
// the surviving bytes reaches at least the last acknowledged commit, at
// most one written-but-unacknowledged commit beyond it, and the state is
// bit-exact at whichever sequence it lands on.
func TestCrashAtEveryWriteOffset(t *testing.T) {
	// Dry run: collect the oracle state at every sequence and the total
	// bytes the workload writes.
	const steps = 25
	dry := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	dry.mark(false) // oracle[0] = seeded state at seq 0
	for i := 0; i < steps; i++ {
		if err := crashStep(dry.store, i); err != nil {
			t.Fatalf("dry step %d: %v", i, err)
		}
		dry.mark(false)
	}
	oracle := dry.states // oracle[seq] — one commit per step
	if got := dry.store.Seq(); int(got) != steps {
		t.Fatalf("dry run ended at seq %d, want %d", got, steps)
	}
	dry.w.Kill()
	total := dry.mem.Size(activeSegment(t, dry.mem)) - len(segMagic)

	for at := 1; at <= total+1; at += 37 { // every offset is legal; stride keeps the sweep fast
		h, fb := faultHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
		fb.CrashAfterBytes = fb.BytesWritten() + at
		var acked uint64
		for i := 0; i < steps; i++ {
			if err := crashStep(h.store, i); err != nil {
				break
			}
			acked = h.store.Seq()
		}
		if !fb.Crashed() {
			if at <= total {
				t.Fatalf("crash at +%d (of %d) never fired, acked %d", at, total, acked)
			}
			continue
		}
		rec, err := Replay(h.mem)
		if err != nil {
			t.Fatalf("crash at +%d: replay: %v", at, err)
		}
		if rec.Seq < acked || rec.Seq > acked+1 {
			t.Fatalf("crash at +%d: recovered seq %d, acked %d", at, rec.Seq, acked)
		}
		want := oracle[rec.Seq]
		got := rec.Store.State()
		if got.Seq != want.Seq || len(got.Facts) != len(want.Facts) {
			t.Fatalf("crash at +%d: recovered seq %d with %d slots, want %d", at, got.Seq, len(got.Facts), len(want.Facts))
		}
		for j := range want.Facts {
			if got.Facts[j].Key() != want.Facts[j].Key() || got.Probs[j] != want.Probs[j] || got.Deleted[j] != want.Deleted[j] {
				t.Fatalf("crash at +%d: fact id %d diverges: got (%v, %v, %v), want (%v, %v, %v)",
					at, j, got.Facts[j], got.Probs[j], got.Deleted[j], want.Facts[j], want.Probs[j], want.Deleted[j])
			}
		}
	}
}

func activeSegment(t *testing.T, mem *MemBackend) string {
	t.Helper()
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	seg := ""
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			seg = n
		}
	}
	if seg == "" {
		t.Fatal("no segment")
	}
	return seg
}

// TestCrashMidSnapshotWrite crashes inside the snapshot temp-file write: the
// torn temp file must be invisible to recovery (it was never renamed), and
// the log alone must reconstruct the full acknowledged state.
func TestCrashMidSnapshotWrite(t *testing.T) {
	h, fb := faultHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 15; i++ {
		h.step(r, i)
	}
	h.mark(false)

	// The snapshot path writes the fresh segment's magic (8 bytes), then
	// the snapshot payload: crash a few bytes into the payload.
	fb.CrashAfterBytes = fb.BytesWritten() + len(segMagic) + 16
	if err := h.w.Snapshot(); !errors.Is(err, ErrInjected) {
		t.Fatalf("snapshot over crashing backend: %v, want ErrInjected", err)
	}
	rec, err := Replay(h.mem)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rec.SnapshotSeq == h.states[0].Seq {
		t.Fatal("torn snapshot was loaded as valid")
	}
	h.checkState(rec, 0, "after torn snapshot write")
}

// TestCrashBetweenSnapshotAndTruncate reconstructs the exact on-disk state
// of a crash after the snapshot rename but before the old segments are
// deleted: recovery must use the snapshot, skip the duplicate records the
// stale segments still carry, and land on the acknowledged state.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 15; i++ {
		h.step(r, i)
	}
	h.mark(false)

	preSnap := h.mem.Clone() // all segments, before the mid-run snapshot
	if err := h.w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	h.w.Kill()

	// Graft the post-snapshot files onto the pre-truncation directory: the
	// union is what a crash between rename and delete leaves behind.
	names, err := h.mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := h.mem.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := preSnap.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(data)
		f.Close()
	}
	rec, err := Replay(preSnap)
	if err != nil {
		t.Fatalf("replay with stale segments: %v", err)
	}
	if rec.SnapshotSeq != h.states[0].Seq {
		t.Errorf("recovered from snapshot %d, want %d", rec.SnapshotSeq, h.states[0].Seq)
	}
	if rec.Records != 0 {
		t.Errorf("replayed %d records over the covering snapshot, want 0 (all stale)", rec.Records)
	}
	h.checkState(rec, 0, "stale segments + fresh snapshot")
}

// TestCorruptSnapshotFallsBack damages the newest snapshot in place (bit
// rot after rename). Recovery falls back to the older snapshot — and since
// the newest snapshot's truncation already deleted the middle of the log,
// the fallback must either reconstruct the full state from what survives or
// refuse with a log-gap error. Silently serving a state with missing
// commits is the one forbidden outcome.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 10; i++ {
		h.step(r, i)
	}
	if err := h.w.Snapshot(); err != nil { // snapshot #2, after the baseline
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		h.step(r, i)
	}
	h.mark(false)
	h.w.Kill()

	names, _ := h.mem.List()
	var snaps []string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("want 2 retained snapshots, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	data, err := h.mem.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	f, _ := h.mem.Create(newest)
	f.Write(data)
	f.Close()

	rec, err := Replay(h.mem)
	if err != nil {
		if !strings.Contains(err.Error(), "log gap") {
			t.Fatalf("fallback failed with %v, want a log-gap refusal", err)
		}
		return
	}
	h.checkState(rec, 0, "fallback to older snapshot")
}
