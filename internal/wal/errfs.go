package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the failure every FaultBackend fault surfaces as; tests
// assert on it with errors.Is.
var ErrInjected = errors.New("wal: injected fault")

// FaultBackend wraps another Backend and injects failures at configurable
// points: the errfs of the crash-recovery property tests. Faults are
// counted across every file the backend has handed out, so "fail the 7th
// write" means the 7th write the whole pipeline issues — which lets a test
// sweep the failure point across an entire workload.
//
// Two families of faults:
//
//   - Error faults (FailWrite, FailSync, FailCreate): the Nth such call
//     returns ErrInjected without touching the underlying backend. The
//     pipeline is expected to surface the error to the committing client
//     and poison itself.
//   - Crash faults (CrashAfterBytes): the write that crosses the global
//     byte-offset threshold is silently truncated at the boundary and every
//     operation afterwards fails with ErrInjected. The underlying backend
//     is left holding exactly what a kernel panic mid-write would leave —
//     hand it to Replay to test recovery.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	writes  int // calls seen so far
	syncs   int
	creates int
	written int // total bytes accepted across all files

	// FailWrite / FailSync / FailCreate fail the Nth call (1-based) of that
	// kind and every later one. 0 disables.
	FailWrite  int
	FailSync   int
	FailCreate int
	// CrashAfterBytes crashes the backend once the cumulative bytes written
	// across all files would exceed it: the crossing write is truncated at
	// the boundary (a torn write), everything after fails. < 0 disables.
	CrashAfterBytes int

	crashed bool
}

// NewFaultBackend wraps inner with no faults armed.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner, CrashAfterBytes: -1}
}

// Crashed reports whether a CrashAfterBytes fault has fired.
func (b *FaultBackend) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

// Writes returns the number of Write calls observed so far — run a workload
// once to count them, then sweep FailWrite over the range.
func (b *FaultBackend) Writes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.writes
}

// Syncs returns the number of Sync calls observed so far.
func (b *FaultBackend) Syncs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syncs
}

// BytesWritten returns the cumulative bytes accepted across all files.
func (b *FaultBackend) BytesWritten() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.written
}

type faultFile struct {
	b     *FaultBackend
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.b.mu.Lock()
	if f.b.crashed {
		f.b.mu.Unlock()
		return 0, ErrInjected
	}
	f.b.writes++
	if f.b.FailWrite > 0 && f.b.writes >= f.b.FailWrite {
		f.b.mu.Unlock()
		return 0, ErrInjected
	}
	keep := len(p)
	torn := false
	if f.b.CrashAfterBytes >= 0 && f.b.written+len(p) > f.b.CrashAfterBytes {
		keep = f.b.CrashAfterBytes - f.b.written
		if keep < 0 {
			keep = 0
		}
		torn = true
		f.b.crashed = true
	}
	f.b.written += keep
	f.b.mu.Unlock()

	if keep > 0 {
		if _, err := f.inner.Write(p[:keep]); err != nil {
			return 0, err
		}
	}
	if torn {
		return keep, ErrInjected
	}
	return len(p), nil
}

func (f *faultFile) Sync() error {
	f.b.mu.Lock()
	if f.b.crashed {
		f.b.mu.Unlock()
		return ErrInjected
	}
	f.b.syncs++
	if f.b.FailSync > 0 && f.b.syncs >= f.b.FailSync {
		f.b.mu.Unlock()
		return ErrInjected
	}
	f.b.mu.Unlock()
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	f.b.mu.Lock()
	crashed := f.b.crashed
	f.b.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	return f.inner.Close()
}

func (b *FaultBackend) Create(name string) (File, error) {
	b.mu.Lock()
	if b.crashed {
		b.mu.Unlock()
		return nil, ErrInjected
	}
	b.creates++
	if b.FailCreate > 0 && b.creates >= b.FailCreate {
		b.mu.Unlock()
		return nil, ErrInjected
	}
	b.mu.Unlock()
	f, err := b.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{b: b, inner: f}, nil
}

func (b *FaultBackend) ReadFile(name string) ([]byte, error) {
	return b.inner.ReadFile(name)
}

func (b *FaultBackend) List() ([]string, error) { return b.inner.List() }

func (b *FaultBackend) Remove(name string) error {
	b.mu.Lock()
	crashed := b.crashed
	b.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	return b.inner.Remove(name)
}

func (b *FaultBackend) Rename(oldName, newName string) error {
	b.mu.Lock()
	crashed := b.crashed
	b.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	return b.inner.Rename(oldName, newName)
}

func (b *FaultBackend) SyncDir() error {
	b.mu.Lock()
	crashed := b.crashed
	b.mu.Unlock()
	if crashed {
		return ErrInjected
	}
	return b.inner.SyncDir()
}
