package wal

// The WAL's observability hooks: a Metrics bundle recorded into from the
// group-commit flusher, the background sync loop and the snapshot protocol.
// Handles are resolved at Open (Options.Metrics) and every use is
// nil-guarded, so an unobserved log pays one pointer check per flush.

import (
	"repro/internal/obs"
)

// Metrics is the WAL's metric bundle. Build with NewMetrics and pass via
// Options.Metrics.
type Metrics struct {
	// FsyncSeconds is the latency of every fsync the pipeline issues —
	// group-commit flushes, background interval syncs and segment seals.
	// Its count against FlushRecords' count is the fsync amortization.
	FsyncSeconds *obs.Histogram
	// FlushRecords is the group-commit batch size: records written per
	// flush (append batching is the pipeline's whole throughput story).
	FlushRecords *obs.Histogram
	// SnapshotSeconds is the duration of the full snapshot protocol
	// (rotate + serialize + fsync + rename + truncate).
	SnapshotSeconds *obs.Histogram
}

// NewMetrics registers the WAL's metric families on r and returns the
// bundle.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		FsyncSeconds: r.Histogram("wal_fsync_seconds",
			"latency of WAL fsyncs (group-commit flushes, interval syncs, segment seals)",
			obs.LatencyBuckets()),
		FlushRecords: r.Histogram("wal_flush_records",
			"records written per group-commit flush",
			obs.ExpBuckets(1, 2, 12)),
		SnapshotSeconds: r.Histogram("wal_snapshot_seconds",
			"duration of the snapshot protocol (rotate, serialize, fsync, truncate)",
			obs.LatencyBuckets()),
	}
}
