package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/incr"
	"repro/internal/rel"
)

// On-disk formats.
//
// Every log segment starts with an 8-byte magic, followed by frames:
//
//	u32 length | u32 crc32c(payload) | payload
//
// both integers little-endian, the checksum over the payload alone
// (Castagnoli polynomial — the CRC32C storage systems standardize on). A
// record payload encodes one commit:
//
//	u64 seq | uvarint count | count × update
//	update: u8 op | op-specific fields
//	  set:    uvarint id | f64 p
//	  insert: f64 p | str rel | uvarint nargs | nargs × str
//	  delete: uvarint id
//	str: uvarint length | bytes
//
// Snapshot files carry their own magic and a single frame whose payload is
//
//	u64 seq | uvarint nfacts | nfacts × (u8 deleted | f64 p | str rel |
//	uvarint nargs | nargs × str) | uvarint nviews | nviews × str
//
// i.e. the full incr.State (tombstones included, so fact ids stay aligned
// with the log tail) plus the normalized queries of the registered views.
//
// Readers treat any malformed tail — truncated length word, length past the
// end of the file, checksum mismatch, short payload — as a torn final write:
// they stop at the last valid frame instead of failing, which is exactly the
// recovery semantics a crash mid-append needs. A snapshot, by contrast, is
// only valid as a whole: it is written to a temporary name and atomically
// renamed, so a torn snapshot never carries the final name.

var (
	segMagic  = []byte("PDBWAL1\n")
	snapMagic = []byte("PDBSNAP\n")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	opSet    = 0
	opInsert = 1
	opDelete = 2
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// appendFrame wraps payload in a length+checksum frame.
func appendFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// readFrame decodes the frame starting at off. ok is false when the bytes
// from off to the end of data do not form a complete, checksum-valid frame —
// the torn-tail condition; next is only meaningful when ok.
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if off+8+n > len(data) {
		return nil, 0, false
	}
	payload = data[off+8 : off+8+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, off + 8 + n, true
}

// encodeRecord serializes one commit's applied updates at its sequence
// number into a record payload (unframed).
func encodeRecord(seq uint64, us []incr.Update) []byte {
	b := make([]byte, 0, 16+24*len(us))
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.AppendUvarint(b, uint64(len(us)))
	for _, u := range us {
		switch u.Op {
		case incr.OpSet:
			b = append(b, opSet)
			b = binary.AppendUvarint(b, uint64(u.ID))
			b = appendFloat(b, u.P)
		case incr.OpInsert:
			b = append(b, opInsert)
			b = appendFloat(b, u.P)
			b = appendString(b, u.Fact.Rel)
			b = binary.AppendUvarint(b, uint64(len(u.Fact.Args)))
			for _, a := range u.Fact.Args {
				b = appendString(b, a)
			}
		case incr.OpDelete:
			b = append(b, opDelete)
			b = binary.AppendUvarint(b, uint64(u.ID))
		}
	}
	return b
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated %s", what)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail("string")
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wal: %d trailing bytes in payload", len(d.b)-d.off)
	}
	return nil
}

// decodeRecord parses a record payload back into its commit.
func decodeRecord(payload []byte) (seq uint64, us []incr.Update, err error) {
	d := &decoder{b: payload}
	seq = d.u64()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("wal: record claims %d updates in %d bytes", n, len(payload))
	}
	us = make([]incr.Update, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		switch op := d.byte(); op {
		case opSet:
			id := d.uvarint()
			us = append(us, incr.Update{Op: incr.OpSet, ID: int(id), P: d.f64()})
		case opInsert:
			p := d.f64()
			relName := d.str()
			nargs := d.uvarint()
			if d.err == nil && nargs > uint64(len(payload)) {
				return 0, nil, fmt.Errorf("wal: insert claims %d args in %d bytes", nargs, len(payload))
			}
			args := make([]string, 0, nargs)
			for j := uint64(0); j < nargs && d.err == nil; j++ {
				args = append(args, d.str())
			}
			us = append(us, incr.Update{Op: incr.OpInsert, Fact: rel.Fact{Rel: relName, Args: args}, P: p})
		case opDelete:
			id := d.uvarint()
			us = append(us, incr.Update{Op: incr.OpDelete, ID: int(id)})
		default:
			return 0, nil, fmt.Errorf("wal: unknown update op %d", op)
		}
	}
	if err := d.done(); err != nil {
		return 0, nil, err
	}
	return seq, us, nil
}

// encodeSnapshot serializes the store state plus the registered views'
// normalized queries into a snapshot payload (unframed).
func encodeSnapshot(st incr.State, views []string) []byte {
	b := make([]byte, 0, 32+32*len(st.Facts))
	b = binary.LittleEndian.AppendUint64(b, st.Seq)
	b = binary.AppendUvarint(b, uint64(len(st.Facts)))
	for i, f := range st.Facts {
		var del byte
		if st.Deleted[i] {
			del = 1
		}
		b = append(b, del)
		b = appendFloat(b, st.Probs[i])
		b = appendString(b, f.Rel)
		b = binary.AppendUvarint(b, uint64(len(f.Args)))
		for _, a := range f.Args {
			b = appendString(b, a)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(views)))
	for _, v := range views {
		b = appendString(b, v)
	}
	return b
}

// decodeSnapshot parses a snapshot payload.
func decodeSnapshot(payload []byte) (incr.State, []string, error) {
	d := &decoder{b: payload}
	var st incr.State
	st.Seq = d.u64()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(payload)) {
		return incr.State{}, nil, fmt.Errorf("wal: snapshot claims %d facts in %d bytes", n, len(payload))
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		del := d.byte() != 0
		p := d.f64()
		relName := d.str()
		nargs := d.uvarint()
		if d.err == nil && nargs > uint64(len(payload)) {
			return incr.State{}, nil, fmt.Errorf("wal: snapshot fact claims %d args in %d bytes", nargs, len(payload))
		}
		args := make([]string, 0, nargs)
		for j := uint64(0); j < nargs && d.err == nil; j++ {
			args = append(args, d.str())
		}
		st.Facts = append(st.Facts, rel.Fact{Rel: relName, Args: args})
		st.Probs = append(st.Probs, p)
		st.Deleted = append(st.Deleted, del)
	}
	nv := d.uvarint()
	if d.err == nil && nv > uint64(len(payload)) {
		return incr.State{}, nil, fmt.Errorf("wal: snapshot claims %d views in %d bytes", nv, len(payload))
	}
	views := make([]string, 0, nv)
	for i := uint64(0); i < nv && d.err == nil; i++ {
		views = append(views, d.str())
	}
	if err := d.done(); err != nil {
		return incr.State{}, nil, err
	}
	return st, views, nil
}
