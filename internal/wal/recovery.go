package wal

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/incr"
)

// File naming: log segments are "wal-<firstseq>.log" where <firstseq> is the
// first sequence number the segment was opened for (zero-padded so lexical
// order is numeric order), snapshots are "snap-<seq>.snap" taken at commit
// <seq>. Snapshots are written under a ".tmp" suffix and renamed into place,
// so a name without the suffix is a complete, checksummed snapshot.

func segName(start uint64) string { return fmt.Sprintf("wal-%020d.log", start) }
func snapName(seq uint64) string  { return fmt.Sprintf("snap-%020d.snap", seq) }

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func parseSegName(name string) (uint64, bool)  { return parseSeqName(name, "wal-", ".log") }
func parseSnapName(name string) (uint64, bool) { return parseSeqName(name, "snap-", ".snap") }

// Recovered reports what Open or Replay reconstructed from a backend: the
// rebuilt store positioned at the last recoverable commit, plus enough
// provenance to explain how it got there.
type Recovered struct {
	// Store is the rebuilt store: snapshot state plus the replayed log tail.
	Store *incr.Store
	// Views holds the normalized queries of the views registered when the
	// snapshot was taken; warm restart re-registers them so the plan cache
	// starts hot.
	Views []string
	// SnapshotSeq is the commit the loaded snapshot was taken at (0: no
	// snapshot, recovery started from an empty store).
	SnapshotSeq uint64
	// Seq is the store's commit sequence after replay — the last
	// acknowledged commit that survived.
	Seq uint64
	// Records counts the log records replayed (records the snapshot already
	// covered are skipped and not counted).
	Records int
	// Segments counts the log segment files read.
	Segments int
	// TornTail reports that some segment ended in an incomplete or
	// checksum-failing record — the expected residue of a crash mid-append;
	// recovery stopped that segment at its last valid record.
	TornTail bool
}

// Replay reconstructs the store from the backend without opening it for
// writing: no files are created, removed or modified, and no background
// pipeline is started. It is the read-only inspection path (pdbcli
// -data-dir) and the recovery half of Open.
func Replay(b Backend) (*Recovered, error) {
	names, err := b.List()
	if err != nil {
		return nil, fmt.Errorf("wal: list: %w", err)
	}

	// Newest structurally valid snapshot wins; older ones are the fallback
	// against a snapshot file damaged after it was renamed into place (the
	// log is only truncated up to the snapshot that replaced it, so the
	// previous snapshot plus the surviving segments still cover the tail the
	// newer one covered).
	var snaps []uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		}
	}
	rec := &Recovered{}
	var state incr.State
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := b.ReadFile(snapName(snaps[i]))
		if err != nil {
			continue
		}
		st, views, err := loadSnapshot(data)
		if err != nil {
			continue
		}
		state, rec.Views, rec.SnapshotSeq = st, views, st.Seq
		break
	}

	store, err := incr.NewStoreFromState(state)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot state: %w", err)
	}
	rec.Store = store

	var segs []uint64
	for _, name := range names {
		if start, ok := parseSegName(name); ok {
			segs = append(segs, start)
		}
	}
	for _, start := range segs {
		data, err := b.ReadFile(segName(start))
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %d: %w", start, err)
		}
		torn, err := replaySegment(store, data, rec)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", segName(start), err)
		}
		rec.Segments++
		if torn {
			rec.TornTail = true
		}
	}
	rec.Seq = store.Seq()
	return rec, nil
}

// loadSnapshot validates and decodes one snapshot file.
func loadSnapshot(data []byte) (incr.State, []string, error) {
	if len(data) < len(snapMagic) || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return incr.State{}, nil, fmt.Errorf("wal: not a snapshot file")
	}
	payload, next, ok := readFrame(data, len(snapMagic))
	if !ok || next != len(data) {
		return incr.State{}, nil, fmt.Errorf("wal: snapshot frame is torn or trailed by garbage")
	}
	return decodeSnapshot(payload)
}

// replaySegment applies one segment's records to the store: records at or
// below the store's current sequence are skipped (the snapshot, or an
// earlier overlapping segment, already covers them), the next expected
// sequence is applied, and anything else is a gap — real corruption, not a
// torn tail — and fails recovery. A malformed tail stops the segment at its
// last valid record and reports torn.
func replaySegment(store *incr.Store, data []byte, rec *Recovered) (torn bool, err error) {
	if len(data) < len(segMagic) {
		// A crash can sever a segment before its magic finished writing;
		// there is nothing after it by construction.
		return len(data) > 0, nil
	}
	if !bytes.Equal(data[:len(segMagic)], segMagic) {
		return false, fmt.Errorf("bad segment magic")
	}
	off := len(segMagic)
	for off < len(data) {
		payload, next, ok := readFrame(data, off)
		if !ok {
			return true, nil
		}
		seq, us, derr := decodeRecord(payload)
		if derr != nil {
			// The checksum passed but the payload does not parse: treat like
			// a torn tail — stop at the last good record — rather than
			// refusing to start at all.
			return true, nil
		}
		cur := store.Seq()
		switch {
		case seq <= cur:
			// Already covered by the snapshot (or an older segment that was
			// not yet truncated when the crash hit).
		case seq == cur+1:
			if err := applyRecord(store, seq, us); err != nil {
				return false, err
			}
			rec.Records++
		default:
			return false, fmt.Errorf("commit %d follows %d: log gap", seq, cur)
		}
		off = next
	}
	return false, nil
}

// applyRecord replays one logged commit and checks the store lands on the
// record's sequence — replay is deterministic, so a divergence means the log
// and the snapshot disagree.
func applyRecord(store *incr.Store, seq uint64, us []incr.Update) error {
	if len(us) == 0 {
		// A commit whose batch staged nothing (every update rejected after
		// one forced a rebuild) still advanced the sequence.
		if err := store.CommitEmpty(); err != nil {
			return fmt.Errorf("replay empty commit %d: %w", seq, err)
		}
	} else {
		applied, _, err := store.ApplyBatchN(us)
		if err != nil {
			return fmt.Errorf("replay commit %d: %w", seq, err)
		}
		if applied != len(us) {
			return fmt.Errorf("replay commit %d: %d of %d updates applied", seq, applied, len(us))
		}
	}
	if got := store.Seq(); got != seq {
		return fmt.Errorf("replay commit %d landed on seq %d", seq, got)
	}
	return nil
}
