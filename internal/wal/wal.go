// Package wal makes the serving stack crash-safe: a write-ahead log of
// incr.Store commits, periodic snapshots with log truncation, and recovery
// that rebuilds the exact pre-crash store.
//
// The design leans on a property the incremental-maintenance layer already
// guarantees: commits are totally ordered by the store's sequence number and
// each carries the exact update batch that produced it. That makes the
// update stream its own log — one checksummed record per commit, the
// sequence number as the log index — and replay is just ApplyBatch in order.
// Concretely:
//
//   - Log. Commits reach the WAL through the store's commit hook: the record
//     is encoded and enqueued under the commit's write lock (preserving
//     sequence order), and the mutating call acknowledges only after the
//     record is durable per the sync policy. A group-commit flusher turns
//     many concurrent small commits into one write and one fsync (batch
//     size + max-wait accumulation, plus the natural batching of appends
//     queueing up behind an in-flight fsync).
//   - Snapshots. Every SnapshotEvery commits (and on graceful Close) the
//     full store state — tombstones included, so fact ids stay aligned with
//     the log — is serialized to snap-<seq> via write-to-temp, fsync,
//     atomic rename, directory fsync; then the log segments the snapshot
//     covers are deleted. Rotation happens before the state is read, so
//     every record in a pre-rotation segment is provably at or below the
//     snapshot's sequence.
//   - Recovery. Open loads the newest valid snapshot, replays the remaining
//     log records in order, tolerates a torn final record (the residue of a
//     crash mid-append) by stopping at the last valid commit, and returns
//     the rebuilt store plus the view queries to re-register for a warm
//     plan cache.
//
// Backends are pluggable (Backend): the real filesystem in production, an
// in-memory map for tests, and a fault injector (FaultBackend) that the
// crash-recovery property tests drive to kill the pipeline at arbitrary
// write, sync and byte boundaries.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/incr"
)

// SyncPolicy selects when an appended record counts as durable and the
// commit that produced it may be acknowledged.
type SyncPolicy int

const (
	// SyncAlways fsyncs every flushed batch before acknowledging its
	// commits: an acknowledged commit survives kill -9. The group-commit
	// pipeline amortizes the fsync over every commit in the batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the write and fsyncs in the
	// background every SyncEvery: a crash loses at most the last interval
	// of acknowledged commits.
	SyncInterval
	// SyncOff never fsyncs (the OS flushes when it pleases): the
	// throughput ceiling, and the durability floor.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// ErrClosed is returned for appends that arrive after Close or Kill.
var ErrClosed = errors.New("wal: closed")

// Options configures Open.
type Options struct {
	// Backend is the directory abstraction the WAL lives in. Required.
	Backend Backend
	// BatchSize is the group-commit batch target: a flush fires as soon as
	// this many records are queued. <= 0 means 64.
	BatchSize int
	// MaxWait is how long a queued record waits for companions before the
	// batch is flushed anyway. 0 means flush immediately; <0 means the
	// default 200µs.
	MaxWait time.Duration
	// Sync is the durability policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval. <= 0
	// means 50ms.
	SyncEvery time.Duration
	// SnapshotEvery triggers an automatic snapshot (and log truncation)
	// after this many commits. 0 disables automatic snapshots — Snapshot
	// and Close still write them.
	SnapshotEvery uint64
	// Metrics, when non-nil, receives fsync latencies, group-commit batch
	// sizes and snapshot durations (see NewMetrics).
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxWait < 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time view of the durability state, for /healthz,
// /statsz and dashboards.
type Stats struct {
	// QueuedSeq/WrittenSeq/SyncedSeq are the last commit sequence enqueued
	// to, written through, and fsynced by the pipeline. An acknowledged
	// commit satisfies SyncedSeq >= seq under SyncAlways and
	// WrittenSeq >= seq otherwise.
	QueuedSeq  uint64 `json:"queued_seq"`
	WrittenSeq uint64 `json:"written_seq"`
	SyncedSeq  uint64 `json:"synced_seq"`
	// QueueDepth is the group-commit queue length right now.
	QueueDepth int `json:"queue_depth"`
	// Appends/Flushes/Syncs count records enqueued, write batches issued,
	// and fsyncs performed; Appends/Flushes is the group-commit
	// amortization factor.
	Appends uint64 `json:"appends"`
	Flushes uint64 `json:"flushes"`
	Syncs   uint64 `json:"syncs"`
	// LogBytes is the framed bytes written to the active segment since it
	// was opened; Segments counts live segment files.
	LogBytes int64 `json:"log_bytes"`
	Segments int   `json:"segments"`
	// SnapshotSeq is the commit of the last completed snapshot and
	// SnapshotAge how long ago it finished (0 when none was taken).
	SnapshotSeq uint64        `json:"snapshot_seq"`
	SnapshotAge time.Duration `json:"snapshot_age_ns"`
	Snapshots   uint64        `json:"snapshots"`
	// Policy echoes the sync policy the log runs under.
	Policy string `json:"fsync"`
	// Err is the sticky pipeline failure, empty while healthy. Once set,
	// every commit fails durability and the attached store marks itself
	// broken.
	Err string `json:"error,omitempty"`
}

// WAL is an open write-ahead log: the group-commit pipeline over the active
// segment, the snapshot machinery, and the store attachment. Create with
// Open, wire with Attach, stop with Close (graceful: flush + final
// snapshot) or Kill (crash simulation: stop without flushing the queue).
type WAL struct {
	b    Backend
	opts Options

	// ioMu serializes file I/O (flusher writes, background syncs, segment
	// rotation); mu guards the queue and counters and is never held across
	// I/O. Lock order: ioMu before mu.
	ioMu sync.Mutex
	mu   sync.Mutex

	qCond     *sync.Cond // queue became non-empty, or closing
	flushCond *sync.Cond // written/synced advanced, or the pipeline failed

	queue       [][]byte // encoded record payloads awaiting flush, seq order
	queuedSeq   uint64
	writtenSeq  uint64
	syncedSeq   uint64
	closed      bool
	err         error // sticky pipeline failure
	active      File
	activeStart uint64
	activeBytes int64
	segments    int
	lastSyncAt  time.Time

	appends, flushes, syncs uint64

	snapMu      sync.Mutex // one snapshot at a time
	snapshotSeq uint64
	snapshotAt  time.Time
	snapshots   uint64
	sinceSnap   uint64
	snapC       chan struct{}
	stopC       chan struct{}
	closeOnce   sync.Once
	closeErr    error
	wg          sync.WaitGroup

	store *incr.Store
	views func() []string
}

// Open recovers whatever the backend holds (snapshot + log tail; an empty
// backend recovers an empty store at sequence 0), opens a fresh active
// segment after the recovered sequence, and starts the group-commit
// pipeline. The caller wires the recovered store (or a freshly seeded one)
// to the log with Attach; until then nothing is appended.
func Open(opts Options) (*WAL, *Recovered, error) {
	if opts.Backend == nil {
		return nil, nil, errors.New("wal: Options.Backend is required")
	}
	opts = opts.withDefaults()
	rec, err := Replay(opts.Backend)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{
		b:     opts.Backend,
		opts:  opts,
		snapC: make(chan struct{}, 1),
		stopC: make(chan struct{}),
	}
	w.qCond = sync.NewCond(&w.mu)
	w.flushCond = sync.NewCond(&w.mu)
	w.queuedSeq, w.writtenSeq, w.syncedSeq = rec.Seq, rec.Seq, rec.Seq
	w.snapshotSeq = rec.SnapshotSeq
	if err := w.openSegment(rec.Seq + 1); err != nil {
		return nil, nil, err
	}
	// Leftovers from an interrupted snapshot write are dead weight: the
	// atomic rename never happened, so nothing references them.
	if names, err := opts.Backend.List(); err == nil {
		for _, name := range names {
			if len(name) > 4 && name[len(name)-4:] == ".tmp" {
				_ = opts.Backend.Remove(name)
			}
		}
	}
	w.segments = w.countSegments()
	w.wg.Add(1)
	go w.flushLoop()
	if opts.Sync == SyncInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	return w, rec, nil
}

// openSegment creates and installs a fresh active segment whose first
// possible record is start. Called from Open (no lock needed) and rotate
// (under ioMu).
func (w *WAL) openSegment(start uint64) error {
	f, err := w.b.Create(segName(start))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := w.b.SyncDir(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.mu.Lock()
	w.active = f
	w.activeStart = start
	w.activeBytes = int64(len(segMagic))
	w.mu.Unlock()
	return nil
}

func (w *WAL) countSegments() int {
	names, err := w.b.List()
	if err != nil {
		return 0
	}
	n := 0
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			n++
		}
	}
	return n
}

// Attach wires the WAL to the store: every commit is appended through the
// store's commit hook and acknowledged only once durable, and automatic
// snapshots (when configured) read the store's state. views, when non-nil,
// supplies the normalized queries of the currently registered views for
// snapshot metadata — the warm-restart half of recovery. Attach before the
// store serves traffic.
func (w *WAL) Attach(st *incr.Store, views func() []string) {
	w.mu.Lock()
	w.store = st
	w.views = views
	w.mu.Unlock()
	st.SetCommitHook(w.commitHook)
	if w.opts.SnapshotEvery > 0 {
		w.wg.Add(1)
		go w.snapLoop()
	}
}

// commitHook is the incr.CommitHook: encode, enqueue in sequence order
// (we run under the store's commit lock), hand back the durability barrier.
func (w *WAL) commitHook(seq uint64, us []incr.Update) (wait func() error) {
	payload := encodeRecord(seq, us)
	w.mu.Lock()
	if w.err != nil || w.closed {
		err := w.err
		if err == nil {
			err = ErrClosed
		}
		w.mu.Unlock()
		return func() error { return err }
	}
	w.queue = append(w.queue, payload)
	w.queuedSeq = seq
	w.appends++
	trigger := false
	if w.opts.SnapshotEvery > 0 {
		w.sinceSnap++
		if w.sinceSnap >= w.opts.SnapshotEvery {
			w.sinceSnap = 0
			trigger = true
		}
	}
	w.qCond.Signal()
	w.mu.Unlock()
	if trigger {
		select {
		case w.snapC <- struct{}{}:
		default: // a snapshot is already pending
		}
	}
	return func() error { return w.waitDurable(seq) }
}

// waitDurable blocks until commit seq is durable under the configured
// policy, or the pipeline has failed or closed.
func (w *WAL) waitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		target := w.writtenSeq
		if w.opts.Sync == SyncAlways {
			target = w.syncedSeq
		}
		if target >= seq {
			return nil
		}
		if w.closed {
			return ErrClosed
		}
		w.flushCond.Wait()
	}
}

// flushLoop is the group-commit pipeline: wait for records, give stragglers
// MaxWait to pile in (unless the batch is already full), then write the
// whole batch as one append and sync it per policy. An in-flight fsync
// naturally extends the batching window — appends queue up behind it and
// the next flush takes them all.
func (w *WAL) flushLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.qCond.Wait()
		}
		if len(w.queue) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		if len(w.queue) < w.opts.BatchSize && w.opts.MaxWait > 0 && !w.closed {
			w.mu.Unlock()
			time.Sleep(w.opts.MaxWait)
			w.mu.Lock()
		}
		batch := w.queue
		w.queue = nil
		last := w.queuedSeq
		w.mu.Unlock()
		w.writeBatch(batch, last)
	}
}

// writeBatch frames and writes one batch through the active segment,
// advancing writtenSeq/syncedSeq or recording the sticky pipeline error.
func (w *WAL) writeBatch(batch [][]byte, last uint64) {
	var buf []byte
	for _, payload := range batch {
		buf = appendFrame(buf, payload)
	}
	w.ioMu.Lock()
	w.mu.Lock()
	f := w.active
	w.mu.Unlock()
	_, werr := f.Write(buf)
	synced := false
	if werr == nil {
		switch w.opts.Sync {
		case SyncAlways:
			if werr = w.timedSync(f); werr == nil {
				synced = true
			}
		case SyncInterval:
			if time.Since(w.lastSyncAt) >= w.opts.SyncEvery {
				if werr = w.timedSync(f); werr == nil {
					synced = true
				}
			}
		}
	}
	w.ioMu.Unlock()
	if m := w.opts.Metrics; m != nil {
		m.FlushRecords.Observe(float64(len(batch)))
	}

	w.mu.Lock()
	if werr != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: append failed: %w", werr)
		}
	} else {
		w.writtenSeq = last
		w.activeBytes += int64(len(buf))
		w.flushes++
		if synced {
			w.syncedSeq = last
			w.syncs++
			w.lastSyncAt = time.Now()
		}
	}
	w.flushCond.Broadcast()
	w.mu.Unlock()
}

// timedSync fsyncs f, feeding the fsync latency histogram when metrics are
// wired. Called with ioMu held (all fsyncs are).
func (w *WAL) timedSync(f File) error {
	m := w.opts.Metrics
	if m == nil {
		return f.Sync()
	}
	t0 := time.Now()
	err := f.Sync()
	m.FsyncSeconds.ObserveSince(t0)
	return err
}

// syncLoop is the SyncInterval background fsync: it catches the written-but
// -unsynced tail that an idle period would otherwise leave exposed.
func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stopC:
			return
		case <-t.C:
			w.syncNow()
		}
	}
}

// syncNow fsyncs the active segment if it holds written-but-unsynced
// records.
func (w *WAL) syncNow() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	f, target := w.active, w.writtenSeq
	stale := w.err == nil && !w.closed && target > w.syncedSeq
	w.mu.Unlock()
	if !stale || f == nil {
		return
	}
	serr := w.timedSync(f)
	w.mu.Lock()
	if serr != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: sync failed: %w", serr)
		}
	} else {
		if target > w.syncedSeq {
			w.syncedSeq = target
		}
		w.syncs++
		w.lastSyncAt = time.Now()
	}
	w.flushCond.Broadcast()
	w.mu.Unlock()
}

// rotate seals the active segment (flush the queue into it, fsync, close)
// and opens a fresh one. After rotate returns, every record in older
// segments has sequence <= the sequence of the last commit enqueued before
// the call — the invariant the snapshot/truncate protocol rests on.
func (w *WAL) rotate() error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	batch := w.queue
	w.queue = nil
	last := w.queuedSeq
	old := w.active
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()

	var buf []byte
	for _, payload := range batch {
		buf = appendFrame(buf, payload)
	}
	var werr error
	if len(buf) > 0 {
		_, werr = old.Write(buf)
	}
	if werr == nil {
		werr = w.timedSync(old) // segment boundaries are always durable
	}
	if cerr := old.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = w.openSegmentLocked(last + 1)
	}
	w.mu.Lock()
	if werr != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: rotate failed: %w", werr)
		}
	} else {
		w.writtenSeq = last
		w.syncedSeq = last
		w.flushes++
		w.syncs++
		w.lastSyncAt = time.Now()
		w.segments++
	}
	w.flushCond.Broadcast()
	err := w.err
	w.mu.Unlock()
	return err
}

// openSegmentLocked is openSegment for callers already holding ioMu.
func (w *WAL) openSegmentLocked(start uint64) error {
	f, err := w.b.Create(segName(start))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := w.b.SyncDir(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.mu.Lock()
	w.active = f
	w.activeStart = start
	w.activeBytes = int64(len(segMagic))
	w.mu.Unlock()
	return nil
}

// snapLoop serves the automatic snapshot triggers raised by the commit
// hook.
func (w *WAL) snapLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopC:
			return
		case <-w.snapC:
			_ = w.Snapshot() // failure is sticky in w.err and visible in Stats
		}
	}
}

// Snapshot serializes the attached store's full state to a snap-<seq> file
// and truncates the log segments it covers. The protocol tolerates a crash
// at every step:
//
//  1. rotate the log — every record in the sealed segments is now at or
//     below the store sequence read in step 2;
//  2. read the store state (a consistent cut at some sequence S >= the
//     rotation boundary) and the registered view queries;
//  3. write snap-S.tmp, fsync it, rename to snap-S, fsync the directory —
//     a crash before the rename leaves only the previous snapshot, after it
//     the new one is complete;
//  4. delete the sealed segments (all covered by S) and all but the latest
//     two snapshots. A crash before the deletions leaves extra files that
//     recovery skips record-by-record.
func (w *WAL) Snapshot() error {
	w.mu.Lock()
	st, views := w.store, w.views
	w.mu.Unlock()
	if st == nil {
		return errors.New("wal: no store attached")
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if m := w.opts.Metrics; m != nil {
		defer m.SnapshotSeconds.ObserveSince(time.Now())
	}

	if err := w.rotate(); err != nil {
		return err
	}
	state := st.State()
	var viewQs []string
	if views != nil {
		viewQs = views()
	}
	if err := w.writeSnapshotFile(state, viewQs); err != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.flushCond.Broadcast()
		w.mu.Unlock()
		return err
	}

	w.mu.Lock()
	w.snapshotSeq = state.Seq
	w.snapshotAt = time.Now()
	w.snapshots++
	activeStart := w.activeStart
	w.mu.Unlock()

	// Truncation and snapshot retirement are pure garbage collection:
	// failures leave extra files, never lost state, so they do not poison
	// the pipeline.
	names, err := w.b.List()
	if err != nil {
		return nil
	}
	var snaps []uint64
	for _, name := range names {
		if start, ok := parseSegName(name); ok && start < activeStart {
			_ = w.b.Remove(name)
		}
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		}
	}
	for i := 0; i+2 < len(snaps); i++ { // List is sorted: oldest first
		_ = w.b.Remove(snapName(snaps[i]))
	}
	_ = w.b.SyncDir()
	w.mu.Lock()
	w.segments = w.countSegments()
	w.mu.Unlock()
	return nil
}

// writeSnapshotFile runs step 3 of the snapshot protocol.
func (w *WAL) writeSnapshotFile(state incr.State, views []string) error {
	name := snapName(state.Seq)
	tmp := name + ".tmp"
	f, err := w.b.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	var buf []byte
	buf = append(buf, snapMagic...)
	buf = appendFrame(buf, encodeSnapshot(state, views))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := w.b.Rename(tmp, name); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := w.b.SyncDir(); err != nil {
		return fmt.Errorf("wal: snapshot dir sync: %w", err)
	}
	return nil
}

// Close shuts the WAL down gracefully: drain and fsync the queue, write a
// final clean snapshot (when a store is attached), and delete the log it
// covers — a planned restart replays nothing. Close is idempotent; the
// caller should quiesce the store first (commits racing Close may fail with
// ErrClosed).
func (w *WAL) Close() error {
	w.closeOnce.Do(func() { w.closeErr = w.shutdown(true) })
	return w.closeErr
}

// Kill stops the WAL the way kill -9 would: background goroutines exit, the
// queue is NOT flushed, no final snapshot or fsync happens. What the
// backend holds afterwards is exactly what a crash at this instant would
// leave. It exists for crash-recovery tests and benchmarks.
func (w *WAL) Kill() {
	w.closeOnce.Do(func() { w.closeErr = w.shutdown(false) })
}

func (w *WAL) shutdown(graceful bool) error {
	close(w.stopC)
	w.mu.Lock()
	w.closed = true
	if !graceful {
		// Drop the unflushed queue: these commits were never acknowledged
		// durable (their waiters now fail with ErrClosed), and a crash
		// would have lost them too.
		w.queue = nil
	}
	w.qCond.Broadcast()
	w.flushCond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()

	w.mu.Lock()
	err := w.err
	store := w.store
	active := w.active
	w.mu.Unlock()
	if !graceful {
		if active != nil {
			active.Close()
		}
		return err
	}
	w.ioMu.Lock()
	if err == nil && active != nil {
		if serr := active.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	w.ioMu.Unlock()
	if err == nil && store != nil {
		// The final snapshot covers everything; the empty segment the
		// rotation inside Snapshot leaves behind is recreated (truncated)
		// by the next Open anyway.
		if serr := w.snapshotClosed(); serr != nil {
			err = serr
		}
	}
	w.mu.Lock()
	if w.active != nil {
		w.active.Close()
	}
	w.mu.Unlock()
	return err
}

// snapshotClosed is Snapshot for the post-shutdown path: the flusher has
// exited, so the queue drain happens inline here.
func (w *WAL) snapshotClosed() error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if m := w.opts.Metrics; m != nil {
		defer m.SnapshotSeconds.ObserveSince(time.Now())
	}
	// The flusher exits only once the queue is empty, so rotation here
	// writes nothing new — it just seals the active segment for the
	// snapshot's covering argument.
	w.mu.Lock()
	w.closed = false // let rotate's error path see a live pipeline
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.closed = true
		w.mu.Unlock()
	}()
	if err := w.rotate(); err != nil {
		return err
	}
	state := w.store.State()
	var viewQs []string
	if w.views != nil {
		viewQs = w.views()
	}
	if err := w.writeSnapshotFile(state, viewQs); err != nil {
		return err
	}
	w.mu.Lock()
	w.snapshotSeq = state.Seq
	w.snapshotAt = time.Now()
	w.snapshots++
	activeStart := w.activeStart
	w.mu.Unlock()
	names, err := w.b.List()
	if err != nil {
		return nil
	}
	var snaps []uint64
	for _, name := range names {
		if start, ok := parseSegName(name); ok && start < activeStart {
			_ = w.b.Remove(name)
		}
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		}
	}
	for i := 0; i+2 < len(snaps); i++ {
		_ = w.b.Remove(snapName(snaps[i]))
	}
	return w.b.SyncDir()
}

// Flush blocks until every commit enqueued so far is written (and fsynced
// under SyncAlways).
func (w *WAL) Flush() error {
	w.mu.Lock()
	seq := w.queuedSeq
	w.mu.Unlock()
	return w.waitDurable(seq)
}

// Stats returns the current durability counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{
		QueuedSeq:   w.queuedSeq,
		WrittenSeq:  w.writtenSeq,
		SyncedSeq:   w.syncedSeq,
		QueueDepth:  len(w.queue),
		Appends:     w.appends,
		Flushes:     w.flushes,
		Syncs:       w.syncs,
		LogBytes:    w.activeBytes,
		Segments:    w.segments,
		SnapshotSeq: w.snapshotSeq,
		Snapshots:   w.snapshots,
		Policy:      w.opts.Sync.String(),
	}
	if !w.snapshotAt.IsZero() {
		s.SnapshotAge = time.Since(w.snapshotAt)
	}
	if w.err != nil {
		s.Err = w.err.Error()
	}
	return s
}
