package wal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incr"
	"repro/internal/rel"
)

const tol = 1e-12

// --- encoding roundtrips ---

func TestRecordRoundtrip(t *testing.T) {
	us := []incr.Update{
		{Op: incr.OpSet, ID: 3, P: 0.25},
		{Op: incr.OpInsert, Fact: rel.NewFact("R", "a", "b"), P: 0.5},
		{Op: incr.OpInsert, Fact: rel.NewFact("Nullary"), P: 1},
		{Op: incr.OpDelete, ID: 0},
		{Op: incr.OpSet, ID: 0, P: 0},
	}
	for _, batch := range [][]incr.Update{us, nil, us[:1]} {
		payload := encodeRecord(42, batch)
		seq, got, err := decodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != 42 {
			t.Fatalf("seq %d", seq)
		}
		if len(got) != len(batch) {
			t.Fatalf("got %d updates, want %d", len(got), len(batch))
		}
		for i := range batch {
			if got[i].Op != batch[i].Op || got[i].ID != batch[i].ID || got[i].P != batch[i].P ||
				got[i].Fact.Key() != batch[i].Fact.Key() {
				t.Fatalf("update %d: got %+v, want %+v", i, got[i], batch[i])
			}
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	st := incr.State{
		Facts:   []rel.Fact{rel.NewFact("R", "a"), rel.NewFact("S", "a", "b"), rel.NewFact("T", "b")},
		Probs:   []float64{0.9, 0, 0.75},
		Deleted: []bool{false, true, false},
		Seq:     17,
	}
	views := []string{"R(?x) & S(?x, ?y)", "T(?y)"}
	got, gotViews, err := decodeSnapshot(encodeSnapshot(st, views))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != st.Seq || !reflect.DeepEqual(got.Probs, st.Probs) || !reflect.DeepEqual(got.Deleted, st.Deleted) {
		t.Fatalf("state mismatch: got %+v, want %+v", got, st)
	}
	for i := range st.Facts {
		if got.Facts[i].Key() != st.Facts[i].Key() {
			t.Fatalf("fact %d: got %v, want %v", i, got.Facts[i], st.Facts[i])
		}
	}
	if !reflect.DeepEqual(gotViews, views) {
		t.Fatalf("views: got %v, want %v", gotViews, views)
	}
}

// TestFrameTorn cuts and corrupts a frame every way a crash can: any
// truncation and any flipped byte must read as not-ok, the intact frame must
// round-trip.
func TestFrameTorn(t *testing.T) {
	payload := []byte("hello, wal")
	framed := appendFrame(nil, payload)
	if got, next, ok := readFrame(framed, 0); !ok || next != len(framed) || string(got) != string(payload) {
		t.Fatalf("intact frame: ok=%v next=%d got=%q", ok, next, got)
	}
	for cut := 0; cut < len(framed); cut++ {
		if _, _, ok := readFrame(framed[:cut], 0); ok {
			t.Fatalf("frame truncated to %d bytes still read ok", cut)
		}
	}
	for i := 0; i < len(framed); i++ {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0x40
		if got, _, ok := readFrame(bad, 0); ok && string(got) == string(payload) {
			// Flipping a length byte can still yield a valid shorter frame
			// only if the checksum happens to collide — with CRC32C over
			// this payload it must not.
			t.Fatalf("byte %d flipped, frame still read back intact", i)
		}
	}
}

func TestDecodeRejectsOverflowClaims(t *testing.T) {
	// A payload claiming more updates than it has bytes must fail fast, not
	// allocate.
	var b []byte
	b = append(b, make([]byte, 8)...) // seq 0
	b = append(b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	if _, _, err := decodeRecord(b); err == nil {
		t.Fatal("record claiming 2^63 updates decoded")
	}
	if _, _, err := decodeSnapshot(b); err == nil {
		t.Fatal("snapshot claiming 2^63 facts decoded")
	}
}

// --- pipeline + recovery harness ---

// harness drives one store through a deterministic random workload with a
// WAL attached, remembering the exact durable state after every
// acknowledged commit.
type harness struct {
	t     *testing.T
	store *incr.Store
	view  *incr.View
	mem   *MemBackend
	w     *WAL

	states []incr.State // states[i] = store state after commit seq i+1... indexed by position
	probs  []float64    // view probability at the same instants
	clones []*MemBackend
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	mem := NewMemBackend()
	opts.Backend = mem
	w, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 || rec.Records != 0 || rec.SnapshotSeq != 0 {
		t.Fatalf("empty backend recovered non-empty: %+v", rec)
	}
	return attachHarness(t, mem, w)
}

// attachHarness seeds a fresh store, attaches it to w, and writes the
// baseline snapshot pdbd writes when seeding a fresh data dir: the backend
// alone must carry the instance from here on. mem is the raw in-memory
// directory (w may write through a fault injector on top of it).
func attachHarness(t *testing.T, mem *MemBackend, w *WAL) *harness {
	t.Helper()
	store, err := incr.NewStore(gen.RSTChain(6, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	v, err := store.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, store: store, view: v, mem: mem, w: w}
	w.Attach(store, func() []string { return []string{rel.HardQuery().String()} })
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return h
}

// mark remembers the current acknowledged state (and optionally the exact
// backend content via Clone).
func (h *harness) mark(clone bool) {
	h.states = append(h.states, h.store.State())
	h.probs = append(h.probs, h.view.Probability())
	if clone {
		h.clones = append(h.clones, h.mem.Clone())
	}
}

// step applies one deterministic random mutation and reports whether it
// committed (workload steps that lose the validity race — deleting the last
// live fact and such — are skipped, not failed).
func (h *harness) step(r *rand.Rand, i int) bool {
	h.t.Helper()
	switch k := r.Intn(10); {
	case k < 5: // reweight a live fact
		id := h.liveID(r)
		if id < 0 {
			return false
		}
		if err := h.store.SetProb(id, float64(r.Intn(11))/10); err != nil {
			h.t.Fatalf("step %d set: %v", i, err)
		}
	case k < 7: // insert a fresh fact (singleton shard)
		if _, err := h.store.Insert(rel.NewFact("R", fmt.Sprintf("z%d", i)), 0.5); err != nil {
			h.t.Fatalf("step %d insert: %v", i, err)
		}
	case k < 8: // delete a live fact, keeping at least two alive
		if h.store.NumLive() <= 2 {
			return false
		}
		id := h.liveID(r)
		if id < 0 {
			return false
		}
		if err := h.store.Delete(id); err != nil {
			h.t.Fatalf("step %d delete: %v", i, err)
		}
	default: // a batch: two sets and an insert in one commit
		a, b := h.liveID(r), h.liveID(r)
		if a < 0 || b < 0 {
			return false
		}
		err := h.store.ApplyBatch([]incr.Update{
			{Op: incr.OpSet, ID: a, P: 0.3},
			{Op: incr.OpInsert, Fact: rel.NewFact("T", fmt.Sprintf("w%d", i)), P: 0.25},
			{Op: incr.OpSet, ID: b, P: 0.7},
		})
		if err != nil {
			h.t.Fatalf("step %d batch: %v", i, err)
		}
	}
	return true
}

func (h *harness) liveID(r *rand.Rand) int {
	for try := 0; try < 64; try++ {
		id := r.Intn(h.store.Len())
		if h.store.Live(id) {
			return id
		}
	}
	return -1
}

// checkRecovered asserts that replaying b lands exactly on remembered state
// i: same sequence, same facts/ids/weights/tombstones, view probability
// within 1e-12.
func (h *harness) checkRecovered(b Backend, i int, ctx string) {
	h.t.Helper()
	rec, err := Replay(b)
	if err != nil {
		h.t.Fatalf("%s: replay: %v", ctx, err)
	}
	h.checkState(rec, i, ctx)
}

func (h *harness) checkState(rec *Recovered, i int, ctx string) {
	h.t.Helper()
	want := h.states[i]
	got := rec.Store.State()
	if got.Seq != want.Seq {
		h.t.Fatalf("%s: recovered seq %d, want %d", ctx, got.Seq, want.Seq)
	}
	if len(got.Facts) != len(want.Facts) {
		h.t.Fatalf("%s: recovered %d fact slots, want %d", ctx, len(got.Facts), len(want.Facts))
	}
	for j := range want.Facts {
		if got.Facts[j].Key() != want.Facts[j].Key() {
			h.t.Fatalf("%s: fact id %d is %v, want %v", ctx, j, got.Facts[j], want.Facts[j])
		}
		if got.Probs[j] != want.Probs[j] { // replay is bit-exact
			h.t.Fatalf("%s: fact id %d weight %v, want %v", ctx, j, got.Probs[j], want.Probs[j])
		}
		if got.Deleted[j] != want.Deleted[j] {
			h.t.Fatalf("%s: fact id %d deleted=%v, want %v", ctx, j, got.Deleted[j], want.Deleted[j])
		}
	}
	v, err := rec.Store.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		h.t.Fatalf("%s: register view on recovered store: %v", ctx, err)
	}
	if d := math.Abs(v.Probability() - h.probs[i]); d > tol {
		h.t.Fatalf("%s: recovered view probability %v, want %v (|Δ|=%.3g)", ctx, v.Probability(), h.probs[i], d)
	}
}

// --- recovery property tests ---

// TestRecoverAtEveryCommit is the core crash property: after EVERY
// acknowledged commit, the backend content alone reconstructs exactly the
// acknowledged state — same sequence, same fact ids and weights, view
// probabilities within 1e-12. Snapshots are forced at several points so
// crash instants land before, between and after snapshot/truncation cycles.
func TestRecoverAtEveryCommit(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(7))
	h.mark(true) // the empty pre-workload state
	for i := 0; i < 60; i++ {
		if !h.step(r, i) {
			continue
		}
		h.mark(true)
		if len(h.states)%13 == 0 {
			if err := h.w.Snapshot(); err != nil {
				t.Fatalf("snapshot after commit %d: %v", i, err)
			}
			// A crash right after the snapshot cycle must also recover.
			h.clones[len(h.clones)-1] = h.mem.Clone()
		}
	}
	h.w.Kill()
	for i, c := range h.clones {
		h.checkRecovered(c, i, fmt.Sprintf("crash point %d (seq %d)", i, h.states[i].Seq))
	}
	h.checkRecovered(h.mem, len(h.states)-1, "final kill")
}

// TestTornTailEveryByte cuts the log at every byte boundary of the final
// record: recovery must land on the previous commit for every cut short of
// the full record, and on the final commit at the full length — never fail,
// never corrupt.
func TestTornTailEveryByte(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20 || len(h.states) < 2; i++ {
		if h.step(r, i) {
			h.mark(false)
		}
	}
	h.w.Kill()

	// The active segment is the lexically largest wal- file.
	names, err := h.mem.List()
	if err != nil {
		t.Fatal(err)
	}
	seg := ""
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			seg = n
		}
	}
	full := h.mem.Size(seg)

	// Find where the final record begins by walking the frames.
	data, err := h.mem.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off, lastStart := len(segMagic), len(segMagic)
	for off < len(data) {
		_, next, ok := readFrame(data, off)
		if !ok {
			t.Fatalf("final segment has a torn record before the kill point")
		}
		lastStart = off
		off = next
	}
	if off != full {
		t.Fatalf("frame walk ended at %d, file is %d", off, full)
	}

	last := len(h.states) - 1
	for cut := lastStart; cut <= full; cut++ {
		c := h.mem.Clone()
		c.Truncate(seg, cut)
		rec, err := Replay(c)
		if err != nil {
			t.Fatalf("cut at %d: replay: %v", cut, err)
		}
		wantIdx := last - 1
		if cut == full {
			wantIdx = last
		}
		if rec.TornTail != (cut > lastStart && cut < full) {
			t.Fatalf("cut at %d: TornTail=%v", cut, rec.TornTail)
		}
		h.checkState(rec, wantIdx, fmt.Sprintf("cut at byte %d of %d", cut, full))
	}
}

// TestGroupCommitCoalesces runs concurrent committers through one WAL and
// checks (a) the pipeline actually groups appends into fewer flushes, and
// (b) a crash afterwards still recovers the exact final state.
func TestGroupCommitCoalesces(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 16, MaxWait: 2 * time.Millisecond, Sync: SyncAlways})
	const workers, perWorker = 8, 25
	ids := make([]int, 0)
	for id := 0; id < h.store.Len(); id++ {
		if h.store.Live(id) {
			ids = append(ids, id)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := ids[(g*perWorker+i)%len(ids)]
				if err := h.store.SetProb(id, float64((g+i)%10+1)/11); err != nil {
					t.Errorf("worker %d commit %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := h.w.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends %d, want %d", st.Appends, workers*perWorker)
	}
	if st.Flushes >= st.Appends {
		t.Errorf("no group commit: %d flushes for %d appends", st.Flushes, st.Appends)
	}
	if st.Syncs > st.Flushes {
		t.Errorf("%d syncs exceed %d flushes", st.Syncs, st.Flushes)
	}
	if st.SyncedSeq != h.store.Seq() {
		t.Errorf("synced seq %d behind store seq %d after all acks", st.SyncedSeq, h.store.Seq())
	}
	h.mark(false)
	h.w.Kill()
	h.checkRecovered(h.mem, 0, "after concurrent workload")
}

// TestSyncPolicies drives the same workload under each fsync policy; after a
// Flush barrier, the backend recovers the full state under every policy.
func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			h := newHarness(t, Options{BatchSize: 8, MaxWait: 0, Sync: pol, SyncEvery: 5 * time.Millisecond})
			r := rand.New(rand.NewSource(3))
			for i := 0; i < 25; i++ {
				h.step(r, i)
			}
			if err := h.w.Flush(); err != nil {
				t.Fatal(err)
			}
			h.mark(false)
			if pol == SyncInterval {
				// The background fsync must catch up without further commits.
				deadline := time.Now().Add(time.Second)
				for h.w.Stats().SyncedSeq != h.store.Seq() {
					if time.Now().After(deadline) {
						t.Fatalf("interval sync never caught up: %+v", h.w.Stats())
					}
					time.Sleep(time.Millisecond)
				}
			}
			h.w.Kill()
			h.checkRecovered(h.mem, 0, "after flush")
		})
	}
}

// TestGracefulCloseThenReopen checks the planned-restart path: Close seals
// everything under a final snapshot, reopening replays zero records and
// carries the recorded views, and the reopened WAL keeps accepting commits
// that again survive a crash.
func TestGracefulCloseThenReopen(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		h.step(r, i)
	}
	h.mark(false)
	if err := h.w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := h.w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	rec, err := Replay(h.mem)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Errorf("planned restart replayed %d records, want 0", rec.Records)
	}
	if len(rec.Views) != 1 || rec.Views[0] != rel.HardQuery().String() {
		t.Errorf("recovered views %v", rec.Views)
	}
	h.checkState(rec, 0, "after graceful close")

	// Generation 2: reopen over the same backend, continue committing.
	w2, rec2, err := Open(Options{Backend: h.mem, BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Seq != h.states[0].Seq {
		t.Fatalf("reopen at seq %d, want %d", rec2.Seq, h.states[0].Seq)
	}
	st2 := rec2.Store
	w2.Attach(st2, nil)
	v2, err := st2.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := i % st2.Len()
		if !st2.Live(id) {
			continue
		}
		if err := st2.SetProb(id, float64(i%9+1)/10); err != nil {
			t.Fatalf("gen2 commit %d: %v", i, err)
		}
	}
	wantSeq, wantProb := st2.Seq(), v2.Probability()
	w2.Kill()
	rec3, err := Replay(h.mem)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Seq != wantSeq {
		t.Fatalf("gen2 crash recovered seq %d, want %d", rec3.Seq, wantSeq)
	}
	v3, err := rec3.Store.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(v3.Probability() - wantProb); d > tol {
		t.Fatalf("gen2 recovered probability off by %.3g", d)
	}
}

// TestSnapshotTruncatesLog checks the log actually shrinks: after a
// snapshot, the sealed segments are gone and recovery replays only the tail.
func TestSnapshotTruncatesLog(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		h.step(r, i)
	}
	if err := h.w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapSeq := h.store.Seq()
	for i := 20; i < 24; i++ {
		h.step(r, i)
	}
	h.mark(false)
	h.w.Kill()

	names, _ := h.mem.List()
	segs := 0
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs++
		}
	}
	if segs != 1 {
		t.Errorf("%d segments survive the snapshot, want 1 (have %v)", segs, names)
	}
	rec, err := Replay(h.mem)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != snapSeq {
		t.Errorf("recovered from snapshot %d, want %d", rec.SnapshotSeq, snapSeq)
	}
	if want := int(h.states[0].Seq - snapSeq); rec.Records != want {
		t.Errorf("replayed %d records, want %d", rec.Records, want)
	}
	h.checkState(rec, 0, "snapshot + tail")
}

// TestClosedWALRefusesCommits pins the ErrClosed path: commits after Kill
// fail, and the store marks itself broken rather than diverging from the
// log.
func TestClosedWALRefusesCommits(t *testing.T) {
	h := newHarness(t, Options{BatchSize: 4, MaxWait: 0, Sync: SyncAlways})
	if err := h.store.SetProb(0, 0.4); err != nil {
		t.Fatal(err)
	}
	h.w.Kill()
	if err := h.store.SetProb(0, 0.6); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after kill: %v, want ErrClosed", err)
	}
	if err := h.store.SetProb(0, 0.7); err == nil {
		t.Fatal("store still accepts commits after a failed durability wait")
	}
}
