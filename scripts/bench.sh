#!/usr/bin/env bash
# Runs the benchmark suite and records a machine-readable baseline in
# BENCH_BASELINE.json so future performance PRs have a trajectory to compare
# against.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCH    benchmark regexp passed to -bench   (default: .)
#   COUNT    repetitions passed to -count        (default: 3)
#   GOAMD64  amd64 microarchitecture level, passed through to go test; v3
#            lets the compiler emit FMA/AVX forms of the lane kernels
#            (internal/core/kernel), which is how the recorded kernel
#            baselines should be read. Compare the BenchmarkE1Batched
#            lanes=8/64/256 entries (ns_per_assign) for the lane sweep.
#
# The output is MERGED with the existing baseline: a benchmark missing from
# this run (filtered out by BENCH, renamed, or temporarily failing) keeps its
# previously recorded entry instead of being overwritten with empty or NaN
# values — so a partial `BENCH=E13 scripts/bench.sh` refreshes one family
# without wiping the rest of the trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_BASELINE.json}"
bench="${BENCH:-.}"
count="${COUNT:-3}"
raw="$(mktemp)"
fresh="$(mktemp)"
trap 'rm -f "$raw" "$fresh"' EXIT

go test -run '^$' -bench "$bench" -benchmem -count "$count" | tee "$raw"

# Average the repetitions per benchmark and emit a JSON object keyed by
# benchmark name (GOMAXPROCS suffix stripped). Metrics are located by their
# unit label rather than by column, so benchmarks that report extra metrics
# (e.g. the ns/assign of the multi-lane batch benchmarks, the req/s of the
# service load generator) parse correctly.
awk -v host="$(go env GOOS)/$(go env GOARCH)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (f = 3; f <= NF; f++) {
        if ($f == "ns/op")          ns[name] += $(f-1)
        else if ($f == "B/op")      bytes[name] += $(f-1)
        else if ($f == "allocs/op") allocs[name] += $(f-1)
        else if ($f == "ns/assign") assign[name] += $(f-1)
        else if ($f == "ns/update") update[name] += $(f-1)
        else if ($f == "shards")    shards[name] += $(f-1)
        else if ($f == "req/s")     reqs[name] += $(f-1)
        else if ($f == "ns/durable_update") durable[name] += $(f-1)
        else if ($f == "appends/flush")     batching[name] += $(f-1)
        else if ($f == "recovery_ms")       recms[name] += $(f-1)
        else if ($f == "p50_us")            p50[name] += $(f-1)
        else if ($f == "p99_us")            p99[name] += $(f-1)
    }
    runs[name]++
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": {\n", host
    first = 1
    for (i = 0; i < n; i++) {
        name = order[i]
        # A benchmark line that carried no parsed ns/op metric (e.g. the
        # benchmark failed after printing its name) must not poison the
        # baseline with zero/NaN fields — skipping it here leaves the
        # previously recorded entry intact through the merge below.
        if (!(name in ns) || runs[name] == 0) continue
        extra = ""
        if (name in assign)
            extra = sprintf(", \"ns_per_assign\": %.1f", assign[name]/runs[name])
        if (name in update)
            extra = extra sprintf(", \"ns_per_update\": %.1f", update[name]/runs[name])
        if (name in shards)
            extra = extra sprintf(", \"shards\": %.0f", shards[name]/runs[name])
        if (name in reqs)
            extra = extra sprintf(", \"req_per_s\": %.0f", reqs[name]/runs[name])
        if (name in durable)
            extra = extra sprintf(", \"ns_per_durable_update\": %.1f", durable[name]/runs[name])
        if (name in batching)
            extra = extra sprintf(", \"appends_per_flush\": %.2f", batching[name]/runs[name])
        if (name in recms)
            extra = extra sprintf(", \"recovery_ms\": %.2f", recms[name]/runs[name])
        if (name in p50)
            extra = extra sprintf(", \"p50_us\": %.1f", p50[name]/runs[name])
        if (name in p99)
            extra = extra sprintf(", \"p99_us\": %.1f", p99[name]/runs[name])
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f%s, \"runs\": %d}", \
            name, ns[name]/runs[name], bytes[name]/runs[name], allocs[name]/runs[name], extra, runs[name]
    }
    printf "\n  }\n}\n"
}' "$raw" > "$fresh"

# Merge with the previous baseline: entries present in this run win, every
# other previously recorded benchmark survives untouched.
if [ -s "$out" ]; then
    python3 - "$out" "$fresh" <<'PYEOF' > "$out.tmp" && mv "$out.tmp" "$out"
import json, sys
old_path, fresh_path = sys.argv[1], sys.argv[2]
try:
    with open(old_path) as f:
        old = json.load(f)
except (OSError, ValueError):
    old = {}
with open(fresh_path) as f:
    fresh = json.load(f)
merged = dict(old.get("benchmarks", {}))
merged.update(fresh.get("benchmarks", {}))
fresh["benchmarks"] = merged
json.dump(fresh, sys.stdout, indent=2)
print()
PYEOF
else
    cp "$fresh" "$out"
fi

echo "wrote $out"
