#!/usr/bin/env bash
# Runs the benchmark suite and records a machine-readable baseline in
# BENCH_BASELINE.json so future performance PRs have a trajectory to compare
# against.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCH  benchmark regexp passed to -bench   (default: .)
#   COUNT  repetitions passed to -count        (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_BASELINE.json}"
bench="${BENCH:-.}"
count="${COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchmem -count "$count" | tee "$raw"

# Average the repetitions per benchmark and emit a JSON object keyed by
# benchmark name (GOMAXPROCS suffix stripped). Metrics are located by their
# unit label rather than by column, so benchmarks that report extra metrics
# (e.g. the ns/assign of the multi-lane batch benchmarks) parse correctly.
awk -v host="$(go env GOOS)/$(go env GOARCH)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (f = 3; f <= NF; f++) {
        if ($f == "ns/op")          ns[name] += $(f-1)
        else if ($f == "B/op")      bytes[name] += $(f-1)
        else if ($f == "allocs/op") allocs[name] += $(f-1)
        else if ($f == "ns/assign") assign[name] += $(f-1)
        else if ($f == "ns/update") update[name] += $(f-1)
        else if ($f == "shards")    shards[name] += $(f-1)
    }
    runs[name]++
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": {\n", host
    for (i = 0; i < n; i++) {
        name = order[i]
        extra = ""
        if (name in assign)
            extra = sprintf(", \"ns_per_assign\": %.1f", assign[name]/runs[name])
        if (name in update)
            extra = extra sprintf(", \"ns_per_update\": %.1f", update[name]/runs[name])
        if (name in shards)
            extra = extra sprintf(", \"shards\": %.0f", shards[name]/runs[name])
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f%s, \"runs\": %d}%s\n", \
            name, ns[name]/runs[name], bytes[name]/runs[name], allocs[name]/runs[name], extra, runs[name], \
            (i < n-1 ? "," : "")
    }
    printf "  }\n}\n"
}' "$raw" > "$out"

echo "wrote $out"
