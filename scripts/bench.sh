#!/usr/bin/env bash
# Runs the benchmark suite and records a machine-readable baseline in
# BENCH_BASELINE.json so future performance PRs have a trajectory to compare
# against.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCH  benchmark regexp passed to -bench   (default: .)
#   COUNT  repetitions passed to -count        (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_BASELINE.json}"
bench="${BENCH:-.}"
count="${COUNT:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchmem -count "$count" | tee "$raw"

# Average the repetitions per benchmark and emit a JSON object keyed by
# benchmark name (GOMAXPROCS suffix stripped).
awk -v host="$(go env GOOS)/$(go env GOARCH)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; bytes[name] += $5; allocs[name] += $7; runs[name]++
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": {\n", host
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f, \"runs\": %d}%s\n", \
            name, ns[name]/runs[name], bytes[name]/runs[name], allocs[name]/runs[name], runs[name], \
            (i < n-1 ? "," : "")
    }
    printf "  }\n}\n"
}' "$raw" > "$out"

echo "wrote $out"
