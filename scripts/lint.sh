#!/usr/bin/env bash
# Runs the pdblint analyzer suite over the full tree — exactly what the CI
# lint job runs, so a clean local run means a clean CI run.
#
# pdblint (cmd/pdblint, analyzers in internal/lint) machine-enforces the
# engine's contracts: no callbacks or blocking channel ops under the store
# lock (lockcallback), fixed-enum metric labels (obslabels), fmt-free
# allocation-lean hot paths with their bounds hints intact (hotpath), no
# writes to frozen plans outside marked paths (frozenmutation), and
# slog-only logging in internal packages (slogonly).
#
# The vettool route runs the suite over every package *including test
# files*, with the go command doing package loading and caching.
#
# Usage: scripts/lint.sh [packages...]   (default ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o bin/pdblint ./cmd/pdblint
go vet -vettool="$PWD/bin/pdblint" "${@:-./...}"
echo "pdblint: clean"
