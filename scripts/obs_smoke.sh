#!/usr/bin/env bash
# Observability smoke: boots a real pdbd binary (durable, slow-query
# threshold armed, debug listener on), drives every endpoint, then asserts
# the three observability surfaces end to end:
#   - /metrics parses as Prometheus text and the key series are nonzero
#     (request latency histograms, WAL fsync histogram, commit counters,
#     plan-cache events),
#   - the slow-query log emitted structured records with stage breakdowns,
#   - net/http/pprof and the /metrics mirror answer on the debug address.
#
# Usage: scripts/obs_smoke.sh [port] [debug_port]
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-18080}"
dbg_port="${2:-16060}"
addr="127.0.0.1:$port"
dbg="127.0.0.1:$dbg_port"

workdir="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/pdbd" ./cmd/pdbd

cat > "$workdir/inst.pdb" <<'EOF'
fact 0.9 R a
fact 0.5 S a b
fact 0.8 T b
EOF

"$workdir/pdbd" -i "$workdir/inst.pdb" -data-dir "$workdir/data" \
    -addr "$addr" -debug-addr "$dbg" -slow-query 1ns -log-format json \
    2> "$workdir/pdbd.log" &
pid=$!

up=0
for _ in $(seq 1 100); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "FAIL: pdbd did not come up on $addr" >&2
    cat "$workdir/pdbd.log" >&2
    exit 1
fi

post() { curl -sf -X POST "http://$addr/$1" -d "$2" >/dev/null; }
post query  '{"query":"R(?x) & S(?x,?y) & T(?y)"}'
post query  '{"query":"R(?x) & S(?x,?y) & T(?y)"}'
post query  '{"query":"R(?x) & S(?x,?y) & T(?y)","assignment":{"0":0.5}}'
post batch  '{"query":"R(?x) & S(?x,?y) & T(?y)","assignments":[{"0":0.1},{"0":0.9}]}'
post update '{"updates":[{"op":"set","id":0,"p":0.55}]}'

metrics="$workdir/metrics.txt"
curl -sf "http://$addr/metrics" > "$metrics"

# Every non-comment line must be "<series> <value>".
if ! awk '!/^#/ && NF { if (NF != 2) { print "bad sample line: " $0; exit 1 } }' "$metrics"; then
    exit 1
fi

fail=0
for series in \
    'pdbd_http_request_seconds_count{endpoint="query"}' \
    'pdbd_http_request_seconds_count{endpoint="batch"}' \
    'pdbd_http_request_seconds_count{endpoint="update"}' \
    'wal_fsync_seconds_count' \
    'wal_flush_records_count' \
    'incr_commits_total' \
    'incr_commit_seconds_count' \
    'pdbd_plan_cache_events_total{event="hit"}' \
    'pdbd_eval_seconds_count' \
    'pdbd_store_facts'
do
    val="$(awk -v s="$series" '$1 == s { print $2 }' "$metrics")"
    if [ -z "$val" ] || [ "$val" = "0" ]; then
        echo "FAIL: series $series missing or zero (got '${val:-<absent>}')" >&2
        fail=1
    fi
done
[ "$fail" = 0 ]

# The 1ns threshold makes every request slow: the structured log must carry
# slow-request records with stage breakdowns.
grep -q '"msg":"slow request"' "$workdir/pdbd.log" || {
    echo "FAIL: no slow-request records in the log" >&2
    cat "$workdir/pdbd.log" >&2
    exit 1
}
grep -q '"stages":"parse=' "$workdir/pdbd.log" || {
    echo "FAIL: slow-request records carry no stage breakdown" >&2
    exit 1
}

# The debug listener: pprof answers, and the /metrics mirror scrapes.
curl -sf "http://$dbg/debug/pprof/cmdline" >/dev/null
curl -sf "http://$dbg/metrics" > "$workdir/metrics_dbg.txt"
grep -q '^pdbd_http_requests_total' "$workdir/metrics_dbg.txt"

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "obs smoke OK"
